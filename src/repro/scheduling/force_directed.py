"""Force-directed scheduling (Paulin & Knight) — time-constrained baseline.

Force-directed scheduling (FDS) balances the expected number of
simultaneously active operations of each type across the latency budget.
It is the classical *time-constrained* scheduler used as step one of the
two-step power-management baselines the paper contrasts itself with
(first meet the deadline, then fix the power profile).

The implementation follows the textbook formulation:

1. compute ASAP/ALAP windows under the latency bound,
2. build per-type *distribution graphs*: for each cycle, the sum over
   operations of ``1 / window width`` restricted to cycles the operation
   could occupy,
3. repeatedly pick the (operation, cycle) assignment with the lowest
   *force* (self force + predecessor/successor forces) and fix it,
   updating windows and distributions.

Incrementality
--------------
The greedy loop is *incremental* while staying schedule-identical to the
textbook version (the golden tests in ``tests/golden/`` pin this):

* ASAP/ALAP windows are not recomputed from scratch after each fixing —
  only the **cone** actually affected by the newly fixed operation is
  updated (its descendants for ASAP, its ancestors for ALAP).  Longest-
  path values outside the cone provably cannot change, and the updates
  are pure integer arithmetic, so the windows are exactly those a full
  recomputation would produce.
* The candidate-independent *average* term of the self force is hoisted
  out of the per-candidate loop: the textbook formulation recomputes the
  same sum for every candidate cycle, turning an O(width·delay) scan
  into O(width²·delay).  The hoisted term is accumulated with the exact
  same float operations, so forces are bit-identical.
* The distribution graph is built once per iteration (as before), and
  the unfixed set is a real set, so removals are O(1).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.analysis import asap_times, validated_delays
from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from .schedule import Schedule

#: Shared sentinel for "no operation of this type has a window": the
#: self force over an all-zero series is identically zero, so there is no
#: need to materialize a throwaway ``[0.0] * latency`` list per miss.
_NO_DISTRIBUTION: Tuple[float, ...] = ()


def _distribution(
    cdfg: CDFG,
    windows: Mapping[str, Tuple[int, int]],
    delays: Mapping[str, int],
    latency: int,
) -> Dict[OpType, List[float]]:
    """Per-type expected occupancy per cycle (the FDS distribution graph)."""
    distribution: Dict[OpType, List[float]] = {}
    for name, (earliest, latest) in windows.items():
        op = cdfg.operation(name)
        if op.is_virtual:
            continue
        width = latest - earliest + 1
        if width <= 0:
            continue
        probability = 1.0 / width
        series = distribution.setdefault(op.optype, [0.0] * latency)
        for start in range(earliest, latest + 1):
            for cycle in range(start, min(start + delays[name], latency)):
                series[cycle] += probability
    return distribution


def _window_average(
    series: Sequence[float],
    delay: int,
    earliest: int,
    latest: int,
    latency: int,
) -> float:
    """Mean occupancy the operation would claim over its whole window.

    This is the candidate-independent term of the self force; it is
    accumulated in the same order as the textbook per-candidate loop so
    hoisting it does not change a single bit of the result.
    """
    average = 0.0
    for start in range(earliest, latest + 1):
        for cycle in range(start, min(start + delay, latency)):
            average += series[cycle]
    return average / max(latest - earliest + 1, 1)


def _self_force(
    op_type: OpType,
    delays_for_op: int,
    window: Tuple[int, int],
    candidate_start: int,
    distribution: Mapping[OpType, Sequence[float]],
    latency: int,
) -> float:
    """Force of fixing one operation at ``candidate_start``."""
    earliest, latest = window
    series = distribution.get(op_type, _NO_DISTRIBUTION)
    if not series:
        return 0.0
    average = _window_average(series, delays_for_op, earliest, latest, latency)
    chosen = 0.0
    for cycle in range(candidate_start, min(candidate_start + delays_for_op, latency)):
        chosen += series[cycle]
    return chosen - average


def force_directed_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    latency: int,
    label: str = "force-directed",
) -> Schedule:
    """Time-constrained schedule balancing per-type concurrency.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power (recorded on the result).
        latency: Latency bound in cycles.
        label: Label stored on the resulting schedule.

    Returns:
        A precedence-legal schedule meeting the latency bound.
    """
    delays = validated_delays(cdfg, delays)
    names = cdfg.operation_names()
    optypes = {n: cdfg.operation(n).optype for n in names}
    fixed: Dict[str, int] = {}
    unfixed = {n for n in names if not cdfg.operation(n).is_virtual}

    # Initial windows; kept incrementally up to date from here on.
    asap = asap_times(cdfg, delays)
    alap = _alap_with_fixed(cdfg, delays, fixed, latency)

    while unfixed:
        windows = {n: (max(asap[n], 0), max(alap[n], asap[n])) for n in names}
        distribution = _distribution(cdfg, windows, delays, latency)

        best: Optional[Tuple[float, str, int]] = None
        for name in unfixed:
            earliest, latest = windows[name]
            series = distribution.get(optypes[name], _NO_DISTRIBUTION)
            delay = delays[name]
            if not series:
                # No distribution for this type: every candidate has zero
                # force (mirrors _self_force's empty-series answer), so
                # only the earliest can win the (force, name, cycle) min.
                key = (0.0, name, earliest)
                if best is None or key < best:
                    best = key
                continue
            average = _window_average(series, delay, earliest, latest, latency)
            for candidate in range(earliest, latest + 1):
                chosen = 0.0
                for cycle in range(candidate, min(candidate + delay, latency)):
                    chosen += series[cycle]
                key = (chosen - average, name, candidate)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, chosen_name, chosen_start = best
        fixed[chosen_name] = chosen_start
        unfixed.discard(chosen_name)
        _refresh_asap_cone(cdfg, delays, fixed, asap, chosen_name)
        _refresh_alap_cone(cdfg, delays, fixed, alap, chosen_name, latency)

    # Virtual operations at their data-ready time.
    start: Dict[str, int] = dict(fixed)
    for name in cdfg.topological_order():
        if name in start:
            continue
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start.get(pred, 0) + delays[pred])
        start[name] = ready

    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"latency_bound": latency},
    )


def _asap_with_fixed(
    cdfg: CDFG, delays: Mapping[str, int], fixed: Mapping[str, int]
) -> Dict[str, int]:
    start: Dict[str, int] = {}
    for name in cdfg.topological_order():
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, start[pred] + delays[pred])
        start[name] = fixed.get(name, ready)
    return start


def _alap_with_fixed(
    cdfg: CDFG, delays: Mapping[str, int], fixed: Mapping[str, int], latency: int
) -> Dict[str, int]:
    start: Dict[str, int] = {}
    for name in cdfg.reverse_topological_order():
        latest_finish = latency
        for succ in cdfg.successors(name):
            latest_finish = min(latest_finish, start[succ])
        start[name] = fixed.get(name, latest_finish - delays[name])
    return start


def _refresh_asap_cone(
    cdfg: CDFG,
    delays: Mapping[str, int],
    fixed: Mapping[str, int],
    asap: Dict[str, int],
    changed_op: str,
) -> None:
    """Update ``asap`` in place after ``changed_op`` was fixed.

    Longest-path-from-sources values can only change for ``changed_op``
    itself and its transitive successors, so only nodes reached through
    *actually changed* values are revisited — a worklist ordered by
    topological rank, so every node is recomputed after its changed
    predecessors, exactly as a full pass would.  Nodes whose recomputed
    value is unchanged do not propagate further.  Produces exactly the
    map :func:`_asap_with_fixed` would.
    """
    new_value = fixed[changed_op]
    if asap[changed_op] == new_value:
        return
    asap[changed_op] = new_value
    positions = cdfg.topological_positions()
    heap = [(positions[succ], succ) for succ in cdfg.successors(changed_op)]
    heapq.heapify(heap)
    seen = set()
    while heap:
        _, name = heapq.heappop(heap)
        if name in seen:
            continue
        seen.add(name)
        ready = 0
        for pred in cdfg.predecessors(name):
            ready = max(ready, asap[pred] + delays[pred])
        value = fixed.get(name, ready)
        if value != asap[name]:
            asap[name] = value
            for succ in cdfg.successors(name):
                if succ not in seen:
                    heapq.heappush(heap, (positions[succ], succ))


def _refresh_alap_cone(
    cdfg: CDFG,
    delays: Mapping[str, int],
    fixed: Mapping[str, int],
    alap: Dict[str, int],
    changed_op: str,
    latency: int,
) -> None:
    """Update ``alap`` in place after ``changed_op`` was fixed.

    The mirror of :func:`_refresh_asap_cone`: latest-start values can only
    change for ``changed_op`` and its transitive *predecessors*, visited
    in reverse topological rank order.
    """
    new_value = fixed[changed_op]
    if alap[changed_op] == new_value:
        return
    alap[changed_op] = new_value
    positions = cdfg.topological_positions()
    heap = [(-positions[pred], pred) for pred in cdfg.predecessors(changed_op)]
    heapq.heapify(heap)
    seen = set()
    while heap:
        _, name = heapq.heappop(heap)
        if name in seen:
            continue
        seen.add(name)
        latest_finish = latency
        for succ in cdfg.successors(name):
            latest_finish = min(latest_finish, alap[succ])
        value = fixed.get(name, latest_finish - delays[name])
        if value != alap[name]:
            alap[name] = value
            for pred in cdfg.predecessors(name):
                if pred not in seen:
                    heapq.heappush(heap, (-positions[pred], pred))
