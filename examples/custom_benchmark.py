#!/usr/bin/env python3
"""Bring your own design: custom CDFG, custom library, exported artifacts.

Run with::

    python examples/custom_benchmark.py [output_dir]

The script shows the full "power user" path of the library:

1. describe a small DSP kernel (a complex-number multiply-accumulate) with
   the :class:`~repro.ir.builder.CDFGBuilder`,
2. define a custom functional-unit library (different area/power points
   than the paper's Table 1),
3. explore a couple of (T, P) corners,
4. export the CDFG as Graphviz DOT and JSON, and the synthesized datapath
   as a structural-Verilog skeleton.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import SynthesisTask, run_batch
from repro.ir import CDFGBuilder, OpType, save, to_dot
from repro.library import FULibrary, FUModule
from repro.synthesis import synthesize


def build_cmac_cdfg():
    """Complex multiply-accumulate: (a+jb) * (c+jd) + (p+jq)."""
    b = CDFGBuilder("cmac")
    a, bb, c, d = (b.input(n) for n in ("in_a", "in_b", "in_c", "in_d"))
    p, q = b.input("in_p"), b.input("in_q")

    ac = b.mul("ac", a, c)
    bd = b.mul("bd", bb, d)
    ad = b.mul("ad", a, d)
    bc = b.mul("bc", bb, c)

    real = b.sub("real", ac, bd)
    imag = b.add("imag", ad, bc)
    acc_r = b.add("acc_r", real, p)
    acc_i = b.add("acc_i", imag, q)

    b.output("out_r", acc_r)
    b.output("out_i", acc_i)
    return b.build()


def build_custom_library() -> FULibrary:
    """A 16-bit library with a three-way multiplier trade-off."""
    return FULibrary(
        [
            FUModule.make("alu16", {OpType.ADD, OpType.SUB, OpType.GT}, area=120, latency=1, power=3.0),
            FUModule.make("mult16_seq", {OpType.MUL}, area=150, latency=5, power=2.0),
            FUModule.make("mult16_iter", {OpType.MUL}, area=260, latency=3, power=4.5),
            FUModule.make("mult16_array", {OpType.MUL}, area=520, latency=1, power=11.0),
            FUModule.make("port_in", {OpType.INPUT}, area=10, latency=1, power=0.3),
            FUModule.make("port_out", {OpType.OUTPUT}, area=10, latency=1, power=1.2),
        ],
        name="custom-16bit",
    )


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("build/custom_benchmark")
    output_dir.mkdir(parents=True, exist_ok=True)

    cdfg = build_cmac_cdfg()
    library = build_custom_library()
    print(f"CDFG: {cdfg.summary()}")
    print(library.describe())
    print()

    # Explore a few constraint corners through the batch executor.  The
    # custom graph and library are inlined into each task spec, so these
    # tasks serialize to JSON and parallelize with jobs=N like any other.
    corners = ((6, None), (9, 12.0), (12, 8.0), (16, 6.0))
    tasks = [
        SynthesisTask.of(cdfg, library=library, latency=latency, power_budget=budget)
        for latency, budget in corners
    ]
    print("constraint corners:")
    for (latency, budget), record in zip(corners, run_batch(tasks)):
        label = f"T={latency:3d}  P={budget if budget is not None else 'inf':>5}"
        if not record.feasible:
            print(f"  {label}: infeasible")
        else:
            result = record.result
            print(
                f"  {label}: area={result.total_area:7.1f}  "
                f"peak={result.peak_power:5.1f}  "
                f"allocation={result.allocation_summary()}"
            )
    print()

    # Pick one corner and export everything.
    chosen = synthesize(cdfg, library, latency=12, max_power=8.0)
    dot_path = output_dir / "cmac.dot"
    json_path = output_dir / "cmac.json"
    verilog_path = output_dir / "cmac_datapath.v"

    dot_path.write_text(to_dot(cdfg, start_times=chosen.schedule.start_times))
    save(cdfg, json_path)
    verilog_path.write_text(chosen.datapath.to_structural_verilog())

    print(chosen.describe())
    print()
    print(f"wrote {dot_path}")
    print(f"wrote {json_path}")
    print(f"wrote {verilog_path}")


if __name__ == "__main__":
    main()
