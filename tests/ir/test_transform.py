"""Unit tests for repro.ir.transform."""

import pytest

from repro.ir.builder import CDFGBuilder
from repro.ir.operation import OpType
from repro.ir.transform import (
    io_wrapped,
    merge_graphs,
    relabel,
    remove_dead_operations,
    strip_virtual_operations,
)
from repro.ir.validate import is_valid


def graph_with_dead_code():
    b = CDFGBuilder("dead")
    x = b.input("x")
    y = b.input("y")
    live = b.add("live", x, y)
    b.mul("dead_mul", x, y)          # result never reaches an output
    b.output("o", live)
    return b.build()


class TestDeadCode:
    def test_dead_operation_removed(self):
        g = remove_dead_operations(graph_with_dead_code())
        assert "dead_mul" not in g
        assert "live" in g

    def test_inputs_kept_even_if_unused(self):
        g = remove_dead_operations(graph_with_dead_code())
        assert "x" in g and "y" in g

    def test_graph_without_outputs_unchanged(self, diamond_like=None):
        b = CDFGBuilder()
        x = b.input("x")
        b.add("a", x, x)
        g = b.build()
        cleaned = remove_dead_operations(g)
        assert set(cleaned.operation_names()) == set(g.operation_names())

    def test_original_not_mutated(self):
        g = graph_with_dead_code()
        remove_dead_operations(g)
        assert "dead_mul" in g


class TestStripVirtual:
    def test_constants_removed(self):
        b = CDFGBuilder()
        x = b.input("x")
        c = b.const("c")
        m = b.mul("m", x, c)
        b.output("o", m)
        stripped = strip_virtual_operations(b.build())
        assert "c" not in stripped
        assert stripped.predecessors("m") == ("x",)

    def test_nop_bypassed(self):
        b = CDFGBuilder()
        x = b.input("x")
        nop = b.op(OpType.NOP, "nop", (x,))
        y = b.add("y", nop, x)
        b.output("o", y)
        stripped = strip_virtual_operations(b.build(validate=False))
        assert "nop" not in stripped
        assert "x" in stripped.predecessors("y")

    def test_benchmark_survives_stripping(self, hal):
        stripped = strip_virtual_operations(hal)
        assert len(stripped) == len(hal) - 1  # only the constant 3 removed
        assert is_valid(stripped)


class TestRelabel:
    def test_names_rewritten(self, diamond):
        renamed = relabel(diamond, lambda n: f"p_{n}")
        assert "p_left" in renamed
        assert renamed.num_edges() == diamond.num_edges()

    def test_non_injective_mapper_rejected(self, diamond):
        with pytest.raises(ValueError):
            relabel(diamond, lambda n: "same")


class TestMergeAndWrap:
    def test_merge_disjoint_graphs(self, diamond, chain):
        renamed_chain = relabel(chain, lambda n: f"c_{n}")
        merged = merge_graphs(diamond, renamed_chain)
        assert len(merged) == len(diamond) + len(chain)

    def test_merge_rejects_name_collisions(self, diamond):
        with pytest.raises(ValueError):
            merge_graphs(diamond, diamond)

    def test_io_wrapped_adds_missing_io(self):
        b = CDFGBuilder("core")
        x = b.const("x")
        y = b.const("y")
        b.add("s", x, y)
        wrapped = io_wrapped(b.build())
        assert wrapped.operations_of_type(OpType.OUTPUT)
        assert is_valid(wrapped)

    def test_io_wrapped_is_idempotent_on_full_graphs(self, hal):
        wrapped = io_wrapped(hal)
        assert len(wrapped) == len(hal)
