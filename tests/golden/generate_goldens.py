"""Regenerate the golden-schedule fixtures.

Run from the repository root against a *known-good* tree::

    PYTHONPATH=src python tests/golden/generate_goldens.py

The emitted ``golden_schedules.json`` pins the exact ``start_times`` the
force-directed, pasap, palap and engine schedulers produce on the
registered benchmarks and a couple of random layered graphs.  The golden
tests (:mod:`tests.scheduling.test_golden_schedules`) then assert that
performance work on the hot paths never changes a single start time.

The fixtures checked into the repository were generated from the
pre-optimization (seed) implementations, so passing golden tests mean
the optimized schedulers are bit-identical to the originals.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.ir.analysis import critical_path_length
from repro.ir.cdfg import CDFG
from repro.library import default_library
from repro.library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.mobility import compute_windows
from repro.scheduling.palap import palap_schedule
from repro.scheduling.pasap import pasap_schedule
from repro.suite.generators import GeneratorConfig, random_cdfg
from repro.suite.registry import build_benchmark
from repro.synthesis.engine import synthesize

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "golden_schedules.json")

#: (case name, builder kwargs) — the graphs the goldens cover.
GRAPH_CASES: List[Tuple[str, Dict]] = [
    ("hal", {}),
    ("elliptic", {}),
    ("fir", {}),
    ("cosine", {}),
    ("random20", {"operations": 20, "seed": 7}),
    ("random30", {"operations": 30, "seed": 13}),
]

#: Engine (latency, power) constraint pairs per graph; chosen feasible.
ENGINE_CONSTRAINTS: Dict[str, Tuple[int, float]] = {
    "hal": (17, 12.0),
    "elliptic": (22, 25.0),
    "fir": (18, 25.0),
    "cosine": (15, 30.0),
    "random20": (0, 30.0),  # latency 0 → critical path + 6
    "random30": (0, 30.0),
}

#: Power budgets for the pure pasap/palap goldens.
POWER_BUDGETS: Dict[str, float] = {
    "hal": 12.0,
    "elliptic": 25.0,
    "fir": 25.0,
    "cosine": 30.0,
    "random20": 30.0,
    "random30": 30.0,
}


def build_graph(name: str, kwargs: Dict) -> CDFG:
    if kwargs:
        config = GeneratorConfig(
            operations=kwargs["operations"],
            inputs=4,
            levels=max(3, kwargs["operations"] // 5),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=2,
            seed=kwargs["seed"],
        )
        return random_cdfg(config)
    return build_benchmark(name)


def main() -> None:
    library = default_library()
    goldens: Dict[str, Dict] = {}

    for case_name, kwargs in GRAPH_CASES:
        cdfg = build_graph(case_name, kwargs)
        selection = MinPowerSelection().select(cdfg, library)
        delays = selection_delays(selection, cdfg)
        powers = selection_powers(selection, cdfg)
        cp = critical_path_length(cdfg, delays)
        engine_latency, engine_power = ENGINE_CONSTRAINTS[case_name]
        if engine_latency <= 0:
            engine_latency = cp + 6
        # The pure schedulers run on min-power delays, so their latency
        # bound must clear the min-power critical path with slack for the
        # power stretching (the engine instead upgrades modules to meet
        # its tighter bound).
        latency = max(engine_latency, cp + 6)
        budget = POWER_BUDGETS[case_name]
        entry: Dict[str, Dict] = {
            "latency": latency,
            "engine_latency": engine_latency,
            "power": budget,
        }

        fds = force_directed_schedule(cdfg, delays, powers, latency)
        entry["force_directed"] = dict(fds.start_times)

        pasap = pasap_schedule(cdfg, delays, powers, PowerConstraint(budget))
        entry["pasap"] = dict(pasap.start_times)

        palap = palap_schedule(
            cdfg, delays, powers, PowerConstraint(budget), latency
        )
        entry["palap"] = dict(palap.start_times)

        windows = compute_windows(
            cdfg,
            delays,
            powers,
            PowerConstraint(budget),
            TimeConstraint(latency),
        )
        entry["windows"] = {
            n: [w.earliest, w.latest] for n, w in windows.windows.items()
        }

        result = synthesize(cdfg, library, engine_latency, engine_power)
        entry["engine"] = {
            "start_times": dict(result.schedule.start_times),
            "area": result.area.total,
            "power": engine_power,
        }

        goldens[case_name] = entry
        print(f"{case_name}: latency={latency} engine_area={result.area.total:g}")

    with open(OUTPUT, "w") as handle:
        json.dump(goldens, handle, indent=1, sort_keys=True)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
