"""Unit tests for interconnect (multiplexer) estimation."""

import pytest

from repro.binding.interconnect import (
    MUX_INPUT_AREA,
    fu_mux_inputs,
    interconnect_report,
    register_mux_inputs,
    sharing_penalty,
)
from repro.binding.register import RegisterAllocation, ValueLifetime, allocate_registers
from repro.binding.intervals import Interval
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule


class TestFuMuxes:
    def test_unshared_unit_needs_no_mux(self, diamond):
        binding = {"left": "add#0", "right": "Mult#0", "bottom": "sub#0",
                   "a": "input#0", "c": "input#1", "out": "output#0"}
        assert fu_mux_inputs(diamond, binding) == 0

    def test_shared_unit_with_different_sources_needs_mux(self, diamond):
        # left and bottom share one ALU: their operand sources differ
        binding = {"left": "ALU#0", "bottom": "ALU#0"}
        assert fu_mux_inputs(diamond, binding) > 0

    def test_mux_count_counts_distinct_sources(self, wide):
        binding = {f"m{k}": "Mult#0" for k in range(4)}
        count = fu_mux_inputs(wide, binding)
        assert count > 0
        # four operations, two ports, at most four distinct sources per port
        assert count <= 8


class TestRegisterMuxes:
    def test_private_register_needs_no_mux(self):
        allocation = RegisterAllocation(
            registers={0: ["a"], 1: ["b"]},
            lifetimes={
                "a": ValueLifetime("a", Interval(0, 2)),
                "b": ValueLifetime("b", Interval(0, 2)),
            },
        )
        assert register_mux_inputs(allocation) == 0

    def test_shared_register_counts_writers(self):
        allocation = RegisterAllocation(
            registers={0: ["a", "b", "c"]},
            lifetimes={
                "a": ValueLifetime("a", Interval(0, 1)),
                "b": ValueLifetime("b", Interval(1, 2)),
                "c": ValueLifetime("c", Interval(2, 3)),
            },
        )
        assert register_mux_inputs(allocation) == 3


class TestReport:
    def test_report_totals_and_area(self, hal, library):
        selection = MinPowerSelection().select(hal, library)
        delays = selection_delays(selection, hal)
        powers = selection_powers(selection, hal)
        schedule = asap_schedule(hal, delays, powers)
        allocation = allocate_registers(schedule)
        binding = {op: f"{selection[op].name}#0" for op in hal.schedulable_operations()}
        report = interconnect_report(hal, binding, allocation)
        assert report.total_mux_inputs == report.fu_mux_inputs + report.register_mux_inputs
        assert report.area == pytest.approx(report.total_mux_inputs * MUX_INPUT_AREA)


class TestSharingPenalty:
    def test_zero_when_sources_already_present(self, diamond):
        # 'left' and 'right' read the same two inputs, so adding 'right' to an
        # instance already hosting 'left' brings no new sources.
        assert sharing_penalty(diamond, ["left"], "right") == 0

    def test_counts_new_sources(self, diamond):
        # 'bottom' reads left/right which are new to an instance hosting 'left'.
        assert sharing_penalty(diamond, ["left"], "bottom") == 2

    def test_empty_instance_counts_all_sources(self, diamond):
        assert sharing_penalty(diamond, [], "bottom") == 2
