"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.list_scheduler import (
    ResourceInfeasibleError,
    greedy_allocation_for_latency,
    list_schedule,
    minimal_allocation,
)


def setup(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return selection, delays, powers


class TestListSchedule:
    def test_respects_precedence(self, hal, library):
        selection, delays, powers = setup(hal, library)
        allocation = minimal_allocation(hal, selection)
        schedule = list_schedule(hal, delays, powers, selection, allocation)
        schedule.verify()

    def test_respects_resource_limits(self, cosine, library):
        selection, delays, powers = setup(cosine, library)
        allocation = {"Mult (ser.)": 2, "add": 2, "sub": 2, "input": 2, "output": 2}
        schedule = list_schedule(cosine, delays, powers, selection, allocation)
        # at no cycle more than the allocated number of each module runs
        for cycle in range(schedule.makespan):
            running = schedule.operations_in_cycle(cycle)
            per_module = {}
            for op in running:
                if op in selection:
                    per_module[selection[op].name] = per_module.get(selection[op].name, 0) + 1
            for module_name, count in per_module.items():
                assert count <= allocation.get(module_name, 1)

    def test_single_instance_serializes(self, wide, library):
        selection, delays, powers = setup(wide, library)
        allocation = {"Mult (ser.)": 1, "input": 4, "output": 8}
        schedule = list_schedule(wide, delays, powers, selection, allocation)
        # eight 4-cycle multiplications on one unit take at least 32 cycles
        assert schedule.makespan >= 32

    def test_more_resources_never_slower(self, cosine, library):
        selection, delays, powers = setup(cosine, library)
        small = list_schedule(
            cosine, delays, powers, selection, {"Mult (ser.)": 1, "add": 1, "sub": 1}
        )
        large = list_schedule(
            cosine, delays, powers, selection, {"Mult (ser.)": 4, "add": 4, "sub": 4}
        )
        assert large.makespan <= small.makespan

    def test_zero_allocation_rejected(self, hal, library):
        selection, delays, powers = setup(hal, library)
        with pytest.raises(ResourceInfeasibleError):
            list_schedule(hal, delays, powers, selection, {"Mult (ser.)": 0})

    def test_missing_module_assignment_rejected(self, hal, library):
        selection, delays, powers = setup(hal, library)
        del selection["m1_3x"]
        with pytest.raises(ResourceInfeasibleError):
            list_schedule(hal, delays, powers, selection, {"Mult (ser.)": 1})


class TestAllocations:
    def test_minimal_allocation_one_per_needed_module(self, hal, library):
        selection, *_ = setup(hal, library)
        allocation = minimal_allocation(hal, selection)
        assert allocation["Mult (ser.)"] == 1
        assert allocation["add"] == 1
        assert "Mult (par.)" not in allocation

    def test_greedy_allocation_meets_latency(self, hal, library):
        selection, delays, powers = setup(hal, library)
        target = critical_path_length(hal, delays) + 4
        allocation = greedy_allocation_for_latency(hal, delays, powers, selection, target)
        schedule = list_schedule(hal, delays, powers, selection, allocation)
        assert schedule.makespan <= target

    def test_greedy_allocation_rejects_sub_critical_latency(self, hal, library):
        selection, delays, powers = setup(hal, library)
        with pytest.raises(ResourceInfeasibleError):
            greedy_allocation_for_latency(
                hal, delays, powers, selection, critical_path_length(hal, delays) - 1
            )
