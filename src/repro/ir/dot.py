"""Graphviz DOT export of CDFGs and schedules.

The exported text can be rendered with ``dot -Tpdf`` outside this
environment.  When a schedule is supplied, operations are grouped into
per-cycle ranks so the rendered figure reads like the Gantt charts used in
HLS papers (including Figure 1 of the reproduced paper).
"""

from __future__ import annotations

from typing import Mapping, Optional

from .cdfg import CDFG
from .operation import OpType

_SHAPES = {
    OpType.ADD: "circle",
    OpType.SUB: "circle",
    OpType.MUL: "doublecircle",
    OpType.GT: "diamond",
    OpType.LT: "diamond",
    OpType.INPUT: "invtriangle",
    OpType.OUTPUT: "triangle",
    OpType.CONST: "box",
    OpType.NOP: "point",
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(
    cdfg: CDFG,
    start_times: Optional[Mapping[str, int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a CDFG (optionally annotated with a schedule) as DOT text."""
    lines = [f'digraph "{_escape(title or cdfg.name)}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica", fontsize=10];')

    for name in cdfg.operation_names():
        op = cdfg.operation(name)
        shape = _SHAPES.get(op.optype, "ellipse")
        label = f"{op.label}\\n{op.optype.value}"
        if start_times is not None and name in start_times:
            label += f"\\nt={start_times[name]}"
        lines.append(f'  "{_escape(name)}" [label="{label}", shape={shape}];')

    for src, dst in cdfg.edges():
        attrs = ""
        if cdfg.edge_multiplicity(src, dst) > 1:
            attrs = f' [label="x{cdfg.edge_multiplicity(src, dst)}"]'
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}"{attrs};')

    if start_times is not None:
        by_cycle: dict[int, list[str]] = {}
        for name, start in start_times.items():
            if name in cdfg:
                by_cycle.setdefault(start, []).append(name)
        for cycle in sorted(by_cycle):
            members = " ".join(f'"{_escape(n)}"' for n in sorted(by_cycle[cycle]))
            lines.append(f"  {{ rank=same; {members} }}  // cycle {cycle}")

    lines.append("}")
    return "\n".join(lines) + "\n"
