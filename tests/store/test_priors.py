"""Launch-order priors: bucket math, ranking invariants, store mining.

Priors are advisory — they permute a race's launch order, never its
membership or outcome — so the load-bearing properties here are that
:meth:`Priors.rank` is always a permutation of its input and that
:func:`mine_priors` never learns from the portfolio meta-strategy's own
rows (no feedback loops).
"""

import random

import pytest

from repro.store import StoreQuery, constraint_bucket, mine_priors
from repro.store.priors import PairPrior, Priors, pair_label

from .conftest import make_payload


class TestPairLabel:
    def test_two_phase_pairs_join_with_plus(self):
        assert pair_label("pasap", "greedy") == "pasap+greedy"

    def test_self_binding_engine_is_bare(self):
        assert pair_label("engine", "greedy") == "engine"


class TestConstraintBucket:
    def test_power_of_two_axes(self):
        assert constraint_bucket(17, 12.0, None) == "T16|P8|R-"

    def test_exact_powers_keep_their_bucket(self):
        assert constraint_bucket(16, 8.0, 4) == "T16|P8|R4"

    def test_unbounded_axes(self):
        assert constraint_bucket(None, None, None) == "T-|P-|R-"

    def test_tiny_values_floor_at_one(self):
        assert constraint_bucket(1, 0.5, None) == "T1|P1|R-"


class TestPriorsRank:
    def make_priors(self):
        priors = Priors()
        # engine wins fast, pasap wins slow, palap mostly loses
        for _ in range(4):
            priors.observe("hal", "T16|P8|R-", "engine", feasible=True, elapsed=0.1)
            priors.observe("hal", "T16|P8|R-", "pasap+greedy", feasible=True, elapsed=0.5)
        priors.observe("hal", "T16|P8|R-", "palap+greedy", feasible=False, elapsed=0.2)
        return priors

    def test_rank_orders_by_win_rate_then_speed(self):
        priors = self.make_priors()
        ranked = priors.rank(
            ["palap+greedy", "pasap+greedy", "engine"],
            family="hal",
            latency=17,
            power_budget=12.0,
        )
        assert ranked == ["engine", "pasap+greedy", "palap+greedy"]

    def test_unseen_pairs_keep_relative_order_at_the_end(self):
        priors = self.make_priors()
        ranked = priors.rank(
            ["mystery+naive", "engine", "other+greedy"],
            family="hal",
            latency=17,
            power_budget=12.0,
        )
        assert ranked == ["engine", "mystery+naive", "other+greedy"]

    def test_rank_is_always_a_permutation(self):
        priors = self.make_priors()
        rng = random.Random(7)
        labels = ["engine", "pasap+greedy", "palap+greedy", "ilp+naive", "fd+greedy"]
        for _ in range(25):
            candidates = rng.sample(labels, k=rng.randint(1, len(labels)))
            ranked = priors.rank(
                candidates,
                family=rng.choice(["hal", "cosine", "unknown"]),
                latency=rng.choice([None, 3, 17, 64]),
                power_budget=rng.choice([None, 0.5, 12.0]),
            )
            assert sorted(ranked) == sorted(candidates)

    def test_empty_priors_rank_is_identity(self):
        assert Priors().rank(["b", "a", "c"], family="hal") == ["b", "a", "c"]
        assert Priors().is_empty

    def test_falls_back_family_wide_then_global(self):
        priors = Priors()
        # observe() itself folds into all three scopes; build scopes by hand
        # to prove scope_for picks the most specific one with evidence.
        priors.table[("hal", "*")] = {"pasap+greedy": PairPrior(2, 2, 0.2)}
        priors.table[("", "*")] = {"engine": PairPrior(2, 2, 0.1)}
        # exact bucket empty -> family-wide scope ranks pasap first
        assert priors.rank(
            ["engine", "pasap+greedy"], family="hal", latency=17, power_budget=12.0
        ) == ["pasap+greedy", "engine"]
        # unknown family -> global scope ranks engine first
        assert priors.rank(
            ["pasap+greedy", "engine"], family="fir", latency=17, power_budget=12.0
        ) == ["engine", "pasap+greedy"]

    def test_observe_populates_all_three_scopes(self):
        priors = Priors()
        priors.observe("hal", "T16|P8|R-", "engine", feasible=True, elapsed=0.25)
        assert set(priors.table) == {("hal", "T16|P8|R-"), ("hal", "*"), ("", "*")}
        for stats in priors.table.values():
            assert stats["engine"].races == 1
            assert stats["engine"].win_rate == 1.0
            assert stats["engine"].mean_elapsed == pytest.approx(0.25)


class TestMinePriors:
    def test_mines_wins_and_latency_per_bucket(self, columnar):
        for index in range(6):
            key, payload = make_payload(
                index, scheduler="pasap", feasible=index % 2 == 0
            )
            columnar.put(key, payload)
        priors = mine_priors(columnar, family="hal")
        stats = priors.table[("hal", "T16|P8|R-")]["pasap+greedy"]
        assert stats.races == 6
        assert stats.wins == 3
        assert stats.mean_elapsed > 0.0

    def test_skips_portfolio_rows(self, columnar):
        key, payload = make_payload(0, scheduler="engine")
        columnar.put(key, payload)
        key, payload = make_payload(1, scheduler="portfolio")
        columnar.put(key, payload)
        priors = mine_priors(columnar)
        labels = {
            pair for stats in priors.table.values() for pair in stats
        }
        assert "engine" in labels
        assert all("portfolio" not in pair for pair in labels)

    def test_family_filter_narrows_the_scan(self, columnar):
        key, payload = make_payload(0, family="hal", scheduler="pasap")
        columnar.put(key, payload)
        key, payload = make_payload(1, family="cosine", scheduler="palap")
        columnar.put(key, payload)
        priors = mine_priors(columnar, family="cosine")
        families = {family for family, _ in priors.table if family}
        assert families == {"cosine"}

    def test_custom_query_replaces_the_filter(self, columnar):
        keys = {}
        for index in range(8):
            key, payload = make_payload(index)
            columnar.put(key, payload)
            keys[key] = payload
        prefix = sorted(keys)[0][:1]
        expected_rows = sum(1 for key in keys if key.startswith(prefix))
        priors = mine_priors(columnar, query=StoreQuery(key_prefix=prefix))
        stats = priors.table[("", "*")]["pasap+greedy"]
        assert stats.races == expected_rows

    def test_empty_store_mines_empty_priors(self, columnar):
        assert mine_priors(columnar).is_empty
