"""Tests for the HTTP surface and the blocking client."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.serve import Client, ClientError, start_server
from repro.serve.http import parse_submission


@pytest.fixture(scope="module")
def server():
    with start_server(workers=2) as handle:
        yield handle


@pytest.fixture()
def client(server):
    return Client(server.url)


class TestParseSubmission:
    def test_single_spec_object(self):
        submission = parse_submission('{"graph": "hal", "latency": 17}')
        assert len(submission.tasks) == 1 and submission.tasks[0].graph == "hal"
        assert submission.priority == 0

    def test_list_and_batch_file_forms(self):
        assert len(parse_submission('[{"graph": "hal", "latency": 17}]').tasks) == 1
        batch = {
            "tasks": [{"graph": "hal", "latency": 17}],
            "sweeps": [{"graph": "hal", "latency": 17, "power_budgets": [10, 12]}],
        }
        assert len(parse_submission(json.dumps(batch)).tasks) == 3

    def test_priority_rides_the_envelope(self):
        single = parse_submission('{"graph": "hal", "latency": 17, "priority": 5}')
        assert single.priority == 5 and single.tasks[0].graph == "hal"
        batch = parse_submission(
            '{"tasks": [{"graph": "hal", "latency": 17}], "priority": -2}'
        )
        assert batch.priority == -2 and len(batch.tasks) == 1

    def test_non_integer_priority_is_rejected(self):
        from repro.api.task import TaskError

        with pytest.raises(TaskError):
            parse_submission('{"graph": "hal", "priority": "high"}')

    def test_invalid_json_raises_task_error(self):
        from repro.api.task import TaskError

        with pytest.raises(TaskError):
            parse_submission("not json{")


class TestEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["workers"] == 2

    def test_submit_poll_fetch_roundtrip(self, client):
        jobs = client.submit({"graph": "hal", "latency": 17, "power_budget": 12.0})
        assert len(jobs) == 1
        assert len(jobs[0]["key"]) == 64  # sha-256 content address
        (final,) = client.wait(jobs, timeout=60)
        assert final["state"] == "done"
        assert final["record"]["feasible"] is True

        record = client.result(jobs[0]["key"])
        assert record.feasible and record.area == final["record"]["area"]

    def test_stats_includes_batch_summary(self, client):
        client.submit_and_wait({"graph": "hal", "latency": 17, "power_budget": 10.0})
        stats = client.stats()
        assert stats["summary"]["total"] >= 1
        assert set(stats["cache"]) == {"hits", "misses", "writes", "hit_rate", "backend"}
        assert stats["cache"]["backend"] in {"legacy", "columnar"}

    def test_jobs_listing(self, server, client):
        client.submit_and_wait({"graph": "hal", "latency": 17, "power_budget": 12.0})
        with urllib.request.urlopen(f"{server.url}/jobs") as response:
            listing = json.loads(response.read())
        assert listing["jobs"]
        assert listing["jobs"][0]["id"].startswith("job-")

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.job("job-does-not-exist")
        assert excinfo.value.status == 404

    def test_unknown_result_key_is_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.result("f" * 64)
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client._request("/bogus")
        assert excinfo.value.status == 404

    def test_malformed_submission_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/tasks",
            data=b'{"graph": "hal", "lateny": 17}',
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "lateny" in json.loads(excinfo.value.read())["error"]

    def test_rejected_requests_cannot_smuggle_a_pipelined_request(self, server):
        # A rejected request leaves its body unread; on a keep-alive
        # connection those bytes would be parsed as the *next* request
        # (request smuggling through a multiplexing proxy).  The server
        # must close the connection instead of answering the smuggled GET.
        host, port = server.server.server_address[:2]
        smuggled = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        raw = (
            b"POST /tasks HTTP/1.1\r\nHost: x\r\n"
            + f"Content-Length: {64 * 1024 * 1024}\r\n\r\n".encode()
            + smuggled
        )
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(raw)
            sock.settimeout(5)
            data = b""
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                data += chunk
        text = data.decode("utf-8", errors="replace")
        assert text.startswith("HTTP/1.1 413")
        assert "200 OK" not in text, "the smuggled request must not execute"
        assert text.count("HTTP/1.1 ") == 1, "exactly one response, then close"

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(f"{server.url}/tasks", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_post_to_unknown_path_is_404(self, server):
        request = urllib.request.Request(f"{server.url}/bogus", data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_failed_jobs_surface_as_infeasible_records(self, client):
        records = client.submit_and_wait(
            {"graph": "hal", "latency": 17, "power_budget": 2.0}
        )
        assert len(records) == 1
        assert records[0].feasible is False
        assert records[0].error


class TestClientTransport:
    def test_unreachable_server_raises_client_error(self):
        client = Client("http://127.0.0.1:1", timeout=0.2)
        with pytest.raises(ClientError):
            client.healthz()

    def test_submission_to_closed_server_is_503(self, tmp_path):
        handle = start_server(workers=1, state_dir=tmp_path)
        handle.service.queue.close()  # shutting down: no new work
        client = Client(handle.url)
        with pytest.raises(ClientError) as excinfo:
            client.submit({"graph": "hal", "latency": 17})
        assert excinfo.value.status == 503
        handle.close()
