"""A small blocking client for the synthesis service (stdlib ``http.client``).

:class:`Client` speaks the JSON protocol of :mod:`repro.serve.http`:
submit task specs (optionally with a queue priority), poll jobs, fetch
certified result records.  It is what ``repro submit`` and the
end-to-end tests use — deliberately synchronous and dependency-free,
mirroring how a script or CI job would drive a shared synthesis server.

Production manners are built in rather than left to every caller:

* **Split timeouts** — ``connect_timeout`` bounds the TCP handshake,
  ``read_timeout`` bounds each response read, so a silent server cannot
  hang a client for the combined worst case of both.
* **Bounded retry with exponential backoff** — ``429`` (queue full) and
  ``5xx`` responses are retried up to ``retries`` times, sleeping
  ``backoff * 2**attempt`` capped at ``backoff_cap`` seconds, honoring
  the server's ``Retry-After`` header when it asks for longer (still
  capped).  Everything else — 4xx mistakes, transport failures,
  timeouts — raises immediately; retrying a malformed submission
  cannot fix it.

Quickstart::

    from repro.serve import Client, start_server

    with start_server(workers=2) as handle:
        client = Client(handle.url)
        records = client.submit_and_wait(
            {"graph": "hal", "latency": 17, "power_budget": 12.0}
        )
        print(records[0].feasible, records[0].area)
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..api.batch import TaskResult
from ..api.task import SynthesisTask

#: Statuses worth retrying: backpressure and transient server trouble.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class ClientError(RuntimeError):
    """An HTTP-level failure talking to the service.

    Attributes:
        status: HTTP status code (``None`` for transport errors).
        retry_after: Seconds the server asked us to wait (429 responses),
            or ``None``.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class Client:
    """Blocking JSON/HTTP client for one synthesis server.

    Args:
        base_url: Server address, e.g. ``"http://127.0.0.1:8642"`` (what
            :func:`repro.serve.start_server` returns on ``handle.url``).
        timeout: Default for both ``connect_timeout`` and
            ``read_timeout`` when those are not given.
        connect_timeout: Seconds allowed for the TCP connect.
        read_timeout: Seconds allowed for each response read.
        retries: Retry attempts *after* the first try for retryable
            statuses (429/5xx).  ``0`` disables retrying.
        backoff: Base backoff in seconds; attempt ``n`` sleeps
            ``backoff * 2**n`` (before capping).
        backoff_cap: Upper bound on any single sleep, including one
            requested by a ``Retry-After`` header.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 3,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {split.scheme!r} in {base_url!r}")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request_once(
        self, path: str, *, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.connect_timeout
        )
        try:
            try:
                conn.connect()
            except (socket.timeout, TimeoutError) as exc:
                raise ClientError(f"{path}: connect timed out") from exc
            except OSError as exc:
                raise ClientError(f"{path}: {exc}") from exc
            # the connect deadline has served its purpose; from here on
            # the clock that matters is how long a response read may stall
            if conn.sock is not None:
                conn.sock.settimeout(self.read_timeout)
            try:
                conn.request(
                    "POST" if body is not None else "GET",
                    path,
                    body=data,
                    headers=headers,
                )
                response = conn.getresponse()
                raw = response.read()
            except (socket.timeout, TimeoutError) as exc:
                raise ClientError(f"{path}: read timed out") from exc
            except (http.client.HTTPException, OSError) as exc:
                raise ClientError(f"{path}: {exc}") from exc
            if response.status >= 400:
                try:
                    detail = json.loads(raw.decode("utf-8")).get("error", "")
                except ValueError:
                    detail = ""
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                raise ClientError(
                    f"{path}: HTTP {response.status}"
                    + (f" — {detail}" if detail else ""),
                    status=response.status,
                    retry_after=retry_after,
                )
            try:
                return json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                raise ClientError(f"{path}: malformed response body") from exc
        finally:
            conn.close()

    def _request(
        self, path: str, *, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._request_once(path, body=body)
            except ClientError as exc:
                retryable = exc.status in RETRYABLE_STATUSES
                if not retryable or attempt >= self.retries:
                    raise
                delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
                if exc.retry_after is not None:
                    delay = min(self.backoff_cap, max(delay, exc.retry_after))
                self._sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tasks: Union[SynthesisTask, Dict[str, Any], Sequence[Union[SynthesisTask, Dict[str, Any]]]],
        *,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """POST tasks; returns the accepted ``{id, key, state}`` entries.

        Accepts a single :class:`~repro.api.task.SynthesisTask` or spec
        dict, or a sequence of either.  ``priority`` orders the queue:
        higher-priority jobs are dequeued first.  ``deadline_s`` is the
        portfolio job option: every submitted task must then be a
        portfolio task, and the server stamps the deadline into its
        content address before admission (non-portfolio tasks draw a
        400).
        """
        if isinstance(tasks, (SynthesisTask, dict)):
            tasks = [tasks]
        specs = [
            task.to_dict() if isinstance(task, SynthesisTask) else dict(task)
            for task in tasks
        ]
        body: Dict[str, Any] = {"tasks": specs, "priority": int(priority)}
        if deadline_s is not None:
            body["deadline_s"] = float(deadline_s)
        return self._request("/tasks", body=body)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """GET one job's status record."""
        return self._request(f"/jobs/{job_id}")

    def result(self, key: str) -> TaskResult:
        """GET the certified record stored under a content address."""
        payload = self._request(f"/results/{key}")
        return TaskResult.from_dict(payload["record"])

    def healthz(self) -> Dict[str, Any]:
        """GET the liveness payload."""
        return self._request("/healthz")

    def stats(self) -> Dict[str, Any]:
        """GET the queue/cache/strategy counters."""
        return self._request("/stats")

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(
        self,
        jobs: Iterable[Dict[str, Any]],
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> List[Dict[str, Any]]:
        """Poll until every submitted job finishes; returns final job dicts.

        ``jobs`` is what :meth:`submit` returned.  Raises
        :class:`ClientError` on timeout, naming the job that was still
        unfinished.
        """
        deadline = time.monotonic() + timeout
        final: List[Dict[str, Any]] = []
        for entry in jobs:
            job_id = entry["id"]
            while True:
                state = self.job(job_id)
                if state["state"] in ("done", "failed"):
                    final.append(state)
                    break
                if time.monotonic() > deadline:
                    raise ClientError(
                        f"timed out waiting for job {job_id} "
                        f"(state {state['state']!r})"
                    )
                time.sleep(poll)
        return final

    @staticmethod
    def records_from_states(
        states: Iterable[Dict[str, Any]],
    ) -> List[TaskResult]:
        """Reconstruct one :class:`TaskResult` per final job-state dict.

        ``done`` jobs yield their stored record; ``failed`` jobs (e.g. a
        certificate rejection) become infeasible records carrying the
        error, mirroring how :func:`~repro.api.batch.run_batch` reports
        failures as data.  Shared by :meth:`submit_and_wait` and the
        ``repro submit --wait`` CLI so the two can never diverge.
        """
        records: List[TaskResult] = []
        for state in states:
            if state["state"] == "done" and state.get("record"):
                records.append(TaskResult.from_dict(state["record"]))
            else:
                records.append(
                    TaskResult(
                        task=SynthesisTask.from_dict(state["task"]),
                        feasible=False,
                        error=state.get("error"),
                        error_type=state.get("error_type"),
                    )
                )
        return records

    def submit_and_wait(
        self,
        tasks: Union[SynthesisTask, Dict[str, Any], Sequence[Union[SynthesisTask, Dict[str, Any]]]],
        *,
        timeout: float = 120.0,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> List[TaskResult]:
        """Submit, wait, and reconstruct one :class:`TaskResult` per task."""
        accepted = self.submit(tasks, priority=priority, deadline_s=deadline_s)
        return self.records_from_states(self.wait(accepted, timeout=timeout))
