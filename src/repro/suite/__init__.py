"""Benchmark CDFGs: the paper's hal/cosine/elliptic plus extra workloads."""

from .hal import HAL_LATENCIES, hal_cdfg
from .cosine import COSINE_LATENCIES, cosine_cdfg
from .elliptic import ELLIPTIC_LATENCIES, elliptic_cdfg
from .fir import fir_cdfg
from .ar import ar_cdfg
from .generators import (
    FAMILIES,
    GeneratorConfig,
    butterfly_cdfg,
    chain_cdfg,
    family_cdfg,
    family_names,
    mesh_cdfg,
    random_cdfg,
    random_cdfg_batch,
    tree_cdfg,
)
from .registry import (
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    figure2_cases,
    get_benchmark,
    register_benchmark,
)

__all__ = [
    "HAL_LATENCIES",
    "hal_cdfg",
    "COSINE_LATENCIES",
    "cosine_cdfg",
    "ELLIPTIC_LATENCIES",
    "elliptic_cdfg",
    "fir_cdfg",
    "ar_cdfg",
    "FAMILIES",
    "GeneratorConfig",
    "butterfly_cdfg",
    "chain_cdfg",
    "family_cdfg",
    "family_names",
    "mesh_cdfg",
    "random_cdfg",
    "random_cdfg_batch",
    "tree_cdfg",
    "BenchmarkSpec",
    "benchmark_names",
    "build_benchmark",
    "figure2_cases",
    "get_benchmark",
    "register_benchmark",
]
