"""Mutation tests for the from-scratch certificate checker.

Every test corrupts one aspect of a known-good synthesis result and
asserts that :func:`repro.verify.check_certificate` flags exactly that
violation class — the checker must detect each kind of lie a buggy
scheduler or binder could tell.
"""

import json

import pytest

from repro.binding.interconnect import InterconnectReport
from repro.datapath.area import AreaBreakdown
from repro.scheduling.constraints import SynthesisConstraints
from repro.scheduling.schedule import ScheduleError
from repro.synthesis.engine import synthesize
from repro.synthesis.result import SynthesisError
from repro.api.batch import run_task
from repro.api.task import SynthesisTask
from repro.verify import CertificateError, check_certificate


@pytest.fixture
def result(hal, library):
    """A fresh engine result per test (mutations must not leak)."""
    return synthesize(hal, library, 17, 12.0)


class TestCertifiedResults:
    def test_engine_result_is_certified(self, result):
        report = check_certificate(result)
        assert report.ok
        assert report.violations == []
        assert "precedence" in report.checks and "power" in report.checks

    @pytest.mark.parametrize(
        "scheduler,binder",
        [("asap", "greedy"), ("asap", "naive"), ("pasap", "greedy"), ("alap", "greedy")],
    )
    def test_two_phase_results_are_certified(self, scheduler, binder):
        record = run_task(
            SynthesisTask(
                graph="hal",
                latency=30,
                power_budget=40.0,
                scheduler=scheduler,
                binder=binder,
            )
        )
        assert record.feasible
        assert check_certificate(record.result).ok

    def test_report_serializes_and_describes(self, result):
        report = check_certificate(result)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True and payload["violations"] == []
        assert "ok" in report.describe()

    def test_raise_if_violations_is_silent_when_ok(self, result):
        check_certificate(result).raise_if_violations()


class TestConstraintMutations:
    def test_detects_latency_violation(self, result):
        tightened = SynthesisConstraints.of(result.latency - 1, 12.0)
        report = check_certificate(result, constraints=tightened)
        assert not report.ok
        assert "latency" in report.kinds()

    def test_detects_power_violation(self, result):
        halved = SynthesisConstraints.of(17, result.peak_power / 2)
        report = check_certificate(result, constraints=halved)
        assert not report.ok
        assert "power" in report.kinds()
        cycle_violation = report.by_kind("power")[0]
        assert cycle_violation.details["draw"] > cycle_violation.details["budget"]


class TestScheduleMutations:
    def test_detects_precedence_violation(self, result):
        cdfg = result.schedule.cdfg
        # Pull some consumer to cycle 0 while its producer is arithmetic.
        victim = next(
            name
            for name in cdfg.schedulable_operations()
            if any(
                not cdfg.operation(p).is_virtual and result.schedule.start(p) >= 0
                and result.schedule.delays[p] > 0
                for p in cdfg.predecessors(name)
            )
            and result.schedule.start(name) > 0
        )
        result.schedule.start_times[victim] = 0
        report = check_certificate(result)
        assert not report.ok
        assert "precedence" in report.kinds()

    def test_detects_missing_operation(self, result):
        victim = next(iter(result.datapath.binding))
        del result.schedule.start_times[victim]
        report = check_certificate(result)
        assert "completeness" in report.kinds()

    def test_detects_negative_start(self, result):
        victim = next(iter(result.datapath.binding))
        result.schedule.start_times[victim] = -2
        assert "completeness" in check_certificate(result).kinds()


class TestBindingMutations:
    def test_detects_unbound_operation(self, result):
        victim = next(iter(result.datapath.binding))
        del result.datapath.binding[victim]
        report = check_certificate(result)
        assert "binding" in report.kinds()

    def test_detects_unsupported_module(self, result, hal):
        # Rebind a multiplication onto a non-multiplier instance.
        from repro.ir.operation import OpType

        mul_op = next(
            op
            for op in result.datapath.binding
            if hal.operation(op).optype is OpType.MUL
        )
        other = next(
            inst
            for inst in result.datapath.instances.values()
            if not inst.module.supports(OpType.MUL)
        )
        old = result.datapath.instances[result.datapath.binding[mul_op]]
        old.bound_ops.remove(mul_op)
        other.bound_ops.append(mul_op)
        result.datapath.binding[mul_op] = other.name
        report = check_certificate(result)
        assert "binding" in report.kinds()

    def test_detects_binding_to_unknown_instance(self, result):
        victim = next(iter(result.datapath.binding))
        result.datapath.binding[victim] = "ghost#0"
        assert "binding" in check_certificate(result).kinds()

    def test_detects_instance_claiming_unlisted_operation(self, result):
        victim, instance_name = next(iter(result.datapath.binding.items()))
        # The map forgets the operation but the instance still claims it.
        del result.datapath.binding[victim]
        assert victim in result.datapath.instances[instance_name].bound_ops
        report = check_certificate(result)
        assert "binding" in report.kinds()


class TestModuleAndResourceMutations:
    def test_detects_delay_mismatch(self, result):
        victim = next(iter(result.datapath.binding))
        result.schedule.delays[victim] += 1
        assert "module-mismatch" in check_certificate(result).kinds()

    def test_detects_power_mismatch(self, result):
        victim = next(iter(result.datapath.binding))
        result.schedule.powers[victim] += 1.0
        assert "module-mismatch" in check_certificate(result).kinds()

    def test_detects_instance_sharing_conflict(self, result):
        shared = next(
            inst
            for inst in result.datapath.instances.values()
            if len(inst.bound_ops) >= 2
        )
        first, second = shared.bound_ops[:2]
        result.schedule.start_times[second] = result.schedule.start_times[first]
        report = check_certificate(result)
        assert "resource-conflict" in report.kinds()
        assert shared.name in {v.subject for v in report.by_kind("resource-conflict")}


class TestRegisterMutations:
    def test_detects_missing_register_allocation(self, result):
        result.datapath.registers = None
        assert "register-missing" in check_certificate(result).kinds()

    def test_detects_value_stored_nowhere(self, result):
        allocation = result.datapath.registers
        index, producers = next(
            (i, p) for i, p in allocation.registers.items() if p
        )
        producers.pop()
        allocation.invalidate_index()
        assert "register-missing" in check_certificate(result).kinds()

    def test_detects_overlapping_lifetimes_in_one_register(self, result):
        allocation = result.datapath.registers
        # Two values in *different* registers overlap somewhere (otherwise
        # one register would have sufficed); force them together.
        from repro.verify.certificate import _derived_lifetimes

        lifetimes = _derived_lifetimes(result)
        merged = None
        for i, producers_i in allocation.registers.items():
            for j, producers_j in allocation.registers.items():
                if i >= j:
                    continue
                for a in producers_i:
                    for b in producers_j:
                        if a in lifetimes and b in lifetimes:
                            (s1, e1), (s2, e2) = lifetimes[a], lifetimes[b]
                            if s1 < e2 and s2 < e1:
                                merged = (i, j, b)
                if merged:
                    break
            if merged:
                break
        assert merged is not None, "expected overlapping values across registers"
        i, j, mover = merged
        allocation.registers[j].remove(mover)
        allocation.registers[i].append(mover)
        allocation.invalidate_index()
        assert "register-overlap" in check_certificate(result).kinds()


class TestAccountingMutations:
    def test_detects_tampered_interconnect(self, result):
        stored = result.datapath.interconnect
        result.datapath.interconnect = InterconnectReport(
            fu_mux_inputs=stored.fu_mux_inputs + 1,
            register_mux_inputs=stored.register_mux_inputs,
        )
        assert "interconnect" in check_certificate(result).kinds()

    def test_detects_missing_interconnect(self, result):
        result.datapath.interconnect = None
        assert "interconnect" in check_certificate(result).kinds()

    def test_detects_tampered_area(self, result):
        result.area = AreaBreakdown(
            result.area.functional_units - 50.0,
            result.area.registers,
            result.area.interconnect,
        )
        assert "area" in check_certificate(result).kinds()


class TestRaising:
    def test_certificate_error_is_both_families(self, result):
        result.constraints = SynthesisConstraints.of(result.latency - 1, 12.0)
        with pytest.raises(CertificateError) as excinfo:
            result.verify()
        assert isinstance(excinfo.value, SynthesisError)
        assert isinstance(excinfo.value, ScheduleError)
        assert excinfo.value.report.by_kind("latency")

    def test_certify_returns_report_without_raising(self, result):
        result.constraints = SynthesisConstraints.of(result.latency - 1, 12.0)
        report = result.certify()
        assert not report.ok
