"""Auto-regressive (AR) lattice filter benchmark (additional workload).

The AR lattice filter is another standard HLS benchmark (16
multiplications and 12 additions in its published form).  Each of the
four lattice sections performs four multiplications and three additions;
sections are chained, producing the long multiplication-heavy dependence
chains that make the power/area trade-off interesting for the ablation
studies shipped with this reproduction.
"""

from __future__ import annotations

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG


def ar_cdfg(include_io: bool = True) -> CDFG:
    """Build the AR lattice filter CDFG (16 multiplications, 12 additions).

    Args:
        include_io: Include explicit input/output operations (default).

    Returns:
        A validated :class:`~repro.ir.cdfg.CDFG` named ``"ar"``.
    """
    b = CDFGBuilder("ar")

    if include_io:
        forward = b.input("in_f0")
        backward = b.input("in_b0")
        states = [b.input(f"in_s{i}") for i in range(4)]
    else:
        forward = b.const("f0")
        backward = b.const("b0")
        states = [b.const(f"s{i}") for i in range(4)]
    coeffs = [b.const(f"k{i}") for i in range(8)]

    f_signal = forward
    b_signal = backward
    outputs = []
    for section in range(4):
        k_a = coeffs[2 * section]
        k_b = coeffs[2 * section + 1]
        state = states[section]

        m1 = b.mul(f"sec{section}_m1", f_signal, k_a)
        m2 = b.mul(f"sec{section}_m2", b_signal, k_a)
        m3 = b.mul(f"sec{section}_m3", f_signal, k_b)
        m4 = b.mul(f"sec{section}_m4", state, k_b)

        a1 = b.add(f"sec{section}_a1", m1, b_signal)
        a2 = b.add(f"sec{section}_a2", m2, f_signal)
        a3 = b.add(f"sec{section}_a3", m3, m4)

        f_signal = a1
        b_signal = a2
        outputs.append(a3)

    if include_io:
        b.output("out_f", f_signal)
        b.output("out_b", b_signal)
        for index, value in enumerate(outputs):
            b.output(f"out_s{index}", value)

    return b.build()
