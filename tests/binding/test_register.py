"""Unit tests for lifetime analysis and left-edge register allocation."""

import pytest

from repro.binding.intervals import Interval
from repro.binding.register import (
    ValueLifetime,
    allocate_registers,
    left_edge_allocation,
    register_lower_bound,
    value_lifetimes,
)
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.asap import asap_schedule


def schedule_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return asap_schedule(cdfg, delays, powers)


class TestLifetimes:
    def test_lifetime_starts_when_producer_finishes(self, diamond, library):
        schedule = schedule_for(diamond, library)
        lifetimes = value_lifetimes(schedule)
        assert lifetimes["a"].interval.start == schedule.finish("a")

    def test_lifetime_ends_after_last_consumer_starts(self, diamond, library):
        schedule = schedule_for(diamond, library)
        lifetimes = value_lifetimes(schedule)
        consumers = diamond.successors("a")
        last_start = max(schedule.start(c) for c in consumers)
        assert lifetimes["a"].interval.end == last_start + 1

    def test_outputs_and_constants_have_no_lifetime(self, hal, library):
        schedule = schedule_for(hal, library)
        lifetimes = value_lifetimes(schedule)
        assert "out_u1" not in lifetimes
        assert "const_3" not in lifetimes

    def test_unconsumed_values_have_no_lifetime(self, library):
        from repro.ir.builder import CDFGBuilder

        b = CDFGBuilder()
        x = b.input("x")
        b.add("dangling", x, x)
        schedule = schedule_for(b.build(), library)
        assert "dangling" not in value_lifetimes(schedule)

    def test_chained_value_still_needs_one_cycle(self, chain, library):
        schedule = schedule_for(chain, library)
        lifetimes = value_lifetimes(schedule)
        for lifetime in lifetimes.values():
            assert lifetime.interval.length >= 1


class TestLeftEdge:
    def test_non_overlapping_values_share_one_register(self):
        lifetimes = {
            "a": ValueLifetime("a", Interval(0, 2)),
            "b": ValueLifetime("b", Interval(2, 4)),
            "c": ValueLifetime("c", Interval(4, 6)),
        }
        allocation = left_edge_allocation(lifetimes)
        assert allocation.count == 1
        assert allocation.is_consistent()

    def test_overlapping_values_get_distinct_registers(self):
        lifetimes = {
            "a": ValueLifetime("a", Interval(0, 5)),
            "b": ValueLifetime("b", Interval(1, 4)),
            "c": ValueLifetime("c", Interval(2, 3)),
        }
        allocation = left_edge_allocation(lifetimes)
        assert allocation.count == 3
        assert allocation.is_consistent()

    def test_count_matches_lower_bound(self, hal, cosine, elliptic, library):
        """Left-edge is optimal: register count equals the max overlap."""
        for graph in (hal, cosine, elliptic):
            schedule = schedule_for(graph, library)
            allocation = allocate_registers(schedule)
            assert allocation.count == register_lower_bound(schedule)
            assert allocation.is_consistent()

    def test_register_of(self):
        lifetimes = {"a": ValueLifetime("a", Interval(0, 2))}
        allocation = left_edge_allocation(lifetimes)
        assert allocation.register_of("a") == 0
        assert allocation.register_of("zzz") is None

    def test_every_value_assigned_exactly_once(self, elliptic, library):
        schedule = schedule_for(elliptic, library)
        allocation = allocate_registers(schedule)
        assigned = [p for producers in allocation.registers.values() for p in producers]
        assert sorted(assigned) == sorted(allocation.lifetimes)


class TestRegisterOfIndex:
    def test_index_consistent_with_registers(self, hal, cosine, elliptic, library):
        """The memoized reverse index agrees with a scan of ``registers``."""
        for graph in (hal, cosine, elliptic):
            allocation = allocate_registers(schedule_for(graph, library))
            for index, producers in allocation.registers.items():
                for producer in producers:
                    assert allocation.register_of(producer) == index
            assert allocation.register_of("no-such-producer") is None

    def test_invalidate_index_after_mutation(self):
        lifetimes = {
            "a": ValueLifetime("a", Interval(0, 2)),
            "b": ValueLifetime("b", Interval(2, 4)),
        }
        allocation = left_edge_allocation(lifetimes)
        assert allocation.register_of("a") == 0  # memoize
        allocation.registers[7] = ["late"]
        allocation.invalidate_index()
        assert allocation.register_of("late") == 7
        assert allocation.register_of("a") == 0

    def test_index_is_not_part_of_equality(self):
        lifetimes = {"a": ValueLifetime("a", Interval(0, 2))}
        left = left_edge_allocation(lifetimes)
        right = left_edge_allocation(lifetimes)
        left.register_of("a")  # memoize only one side
        assert left == right
