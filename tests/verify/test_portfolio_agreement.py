"""The portfolio-agreement invariant and the fuzz harness's portfolio mix.

A portfolio record is a *derived* oracle — by construction the certified
result of one concrete contender — so the differential harness must flag
a portfolio verdict its own winner cannot reproduce, and an infeasible
race verdict contradicted by a certified witness from its own contender
subset.  These tests drive :func:`_check_portfolio_agreement` on
synthetic reports (no synthesis), then pin the fuzz harness's seeded
portfolio sampling: deterministic, floor-aware, and coordinate-stable.
"""

import pytest

from repro.api.task import SynthesisTask
from repro.verify.differential import (
    CrossCheckReport,
    META_SCHEDULERS,
    StrategyOutcome,
    _check_portfolio_agreement,
)
from repro.verify.fuzz import FuzzConfig, FuzzReport, fuzz_case_tasks

SUBSET = ["engine", "pasap+greedy"]


def task():
    return SynthesisTask(graph="hal", latency=17, power_budget=12.0)


def portfolio_outcome(**kwargs):
    defaults = dict(
        scheduler="portfolio",
        binder="greedy",
        feasible=True,
        area=500.0,
        winner="engine",
        portfolio_subset=list(SUBSET),
    )
    defaults.update(kwargs)
    return StrategyOutcome(**defaults)


def contender_outcome(scheduler="engine", **kwargs):
    defaults = dict(
        scheduler=scheduler,
        binder="greedy",
        feasible=True,
        certified=True,
        area=500.0,
    )
    defaults.update(kwargs)
    return StrategyOutcome(**defaults)


def check(*outcomes):
    report = CrossCheckReport(task=task(), outcomes=list(outcomes))
    implicated = _check_portfolio_agreement(report)
    return report, implicated


class TestFeasiblePortfolio:
    def test_agreeing_winner_passes(self):
        report, implicated = check(portfolio_outcome(), contender_outcome())
        assert report.ok
        assert implicated == []

    def test_winner_infeasible_standalone_is_a_violation(self):
        portfolio = portfolio_outcome()
        winner = contender_outcome(
            feasible=False,
            certified=None,
            area=None,
            error="no schedule",
            error_type="SynthesisError",
        )
        report, implicated = check(portfolio, winner)
        assert not report.ok
        assert report.violations[0].kind == "differential-oracle"
        assert portfolio in implicated and winner in implicated

    def test_winner_area_mismatch_is_a_violation(self):
        report, implicated = check(
            portfolio_outcome(area=450.0), contender_outcome(area=500.0)
        )
        assert not report.ok
        assert "disagrees" in str(report.violations[0])
        assert len(implicated) == 2

    def test_winner_abstention_proves_nothing(self):
        # the standalone winner hit a capacity limit: no verdict, no flag
        winner = contender_outcome(
            scheduler="ilp",
            feasible=False,
            certified=None,
            area=None,
            error_type="ILPLimitError",
        )
        report, implicated = check(
            portfolio_outcome(winner="ilp+greedy"), winner
        )
        assert report.ok and implicated == []

    def test_winner_not_rerun_standalone_is_skipped(self):
        report, implicated = check(portfolio_outcome(winner="palap+naive"))
        assert report.ok and implicated == []

    def test_self_binding_winner_matches_bare_label(self):
        # engine outcomes label as bare "engine", matching the winner field
        report, _ = check(
            portfolio_outcome(winner="engine"), contender_outcome("engine")
        )
        assert report.ok


class TestInfeasiblePortfolio:
    def infeasible_portfolio(self, **kwargs):
        fields = dict(
            feasible=False,
            area=None,
            winner=None,
            error="all contenders infeasible",
            error_type="SynthesisError",
        )
        fields.update(kwargs)
        return portfolio_outcome(**fields)

    def test_certified_witness_in_subset_is_a_violation(self):
        portfolio = self.infeasible_portfolio()
        witness = contender_outcome("pasap", area=480.0)
        report, implicated = check(portfolio, witness)
        assert not report.ok
        assert "certified result" in str(report.violations[0])
        assert portfolio in implicated and witness in implicated

    def test_witness_outside_the_subset_is_out_of_scope(self):
        report, implicated = check(
            self.infeasible_portfolio(),
            contender_outcome("force_directed", area=480.0),
        )
        assert report.ok and implicated == []

    def test_uncertified_witness_proves_nothing(self):
        report, _ = check(
            self.infeasible_portfolio(),
            contender_outcome("pasap", certified=None),
        )
        assert report.ok

    def test_abstentions_are_skipped(self):
        for error_type in ("PortfolioDeadlineError", "PortfolioExecutionError"):
            abstention = self.infeasible_portfolio(error_type=error_type)
            assert abstention.is_verdict is False
            report, implicated = check(abstention, contender_outcome("pasap"))
            assert report.ok and implicated == []

    def test_no_portfolio_outcomes_is_a_noop(self):
        report, implicated = check(contender_outcome())
        assert report.ok and implicated == []


class TestFuzzPortfolioSampling:
    def cases(self, **kwargs):
        config = FuzzConfig(families=("chain", "tree"), seeds=6, **kwargs)
        return list(fuzz_case_tasks(config))

    def test_fraction_validation(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(ValueError):
                FuzzConfig(portfolio_fraction=bad)
        assert FuzzConfig(portfolio_fraction=0.3).to_dict()[
            "portfolio_fraction"
        ] == pytest.approx(0.3)

    def test_sampling_is_deterministic(self):
        first = [(c.family, c.seed, c.portfolio) for c in self.cases(portfolio_fraction=0.5)]
        second = [(c.family, c.seed, c.portfolio) for c in self.cases(portfolio_fraction=0.5)]
        assert first == second
        assert any(flag for _, _, flag in first)

    def test_fraction_never_perturbs_task_coordinates(self):
        plain = self.cases(portfolio_fraction=0.0)
        mixed = self.cases(portfolio_fraction=1.0)
        assert [c.task.cache_key() for c in plain] == [
            c.task.cache_key() for c in mixed
        ]
        assert not any(c.portfolio for c in plain)

    def test_below_floor_cases_never_race(self):
        cases = self.cases(portfolio_fraction=1.0)
        for case in cases:
            budget = case.task.power_budget
            if budget is not None and budget < case.power_floor - 1e-9:
                assert case.portfolio is False

    def test_portfolio_runs_counts_meta_outcomes(self):
        report = FuzzReport(config=FuzzConfig())
        inner = CrossCheckReport(
            task=task(),
            outcomes=[contender_outcome(), portfolio_outcome()],
        )
        report.cases.append(("hal", 0, inner))
        assert report.portfolio_runs == 1
        assert "portfolio race(s)" in report.describe()
        assert report.to_dict()["portfolio_runs"] == 1
        assert "portfolio" in META_SCHEDULERS
