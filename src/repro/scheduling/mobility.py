"""Power-feasible scheduling windows derived from pasap/palap.

For every operation the pair ``(pasap_start, palap_start)`` bounds the
cycles in which it can legally start without violating precedence, the
latency bound or (heuristically) the power budget.  The combined synthesis
engine consumes these windows when building the time-extended
compatibility graph and when checking whether a tentative binding decision
leaves the remaining operations schedulable.

Because pasap and palap are heuristics (the paper is explicit about this),
the window is itself heuristic: a positive-width window does not *prove*
feasibility of every interior start time, and after a binding decision the
windows must be recomputed with the bound operations locked.  A
negative-width window, however, is a reliable infeasibility signal and
triggers the engine's backtrack-and-lock rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..ir.cdfg import CDFG
from .constraints import PowerConstraint, TimeConstraint
from .palap import palap_core
from .pasap import LockedProfileCache, PowerInfeasibleError, pasap_core


@dataclass(frozen=True)
class Window:
    """Earliest/latest power-feasible start cycle of one operation."""

    earliest: int
    latest: int

    @property
    def width(self) -> int:
        """Slack (latest - earliest); negative means infeasible."""
        return self.latest - self.earliest

    @property
    def feasible(self) -> bool:
        return self.latest >= self.earliest

    def contains(self, cycle: int) -> bool:
        return self.earliest <= cycle <= self.latest

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.earliest}, {self.latest}]"


@dataclass
class WindowSet:
    """pasap/palap windows for every operation of a CDFG."""

    windows: Dict[str, Window]
    pasap_starts: Dict[str, int]
    palap_starts: Dict[str, int]

    def __getitem__(self, op_name: str) -> Window:
        return self.windows[op_name]

    def __contains__(self, op_name: str) -> bool:
        return op_name in self.windows

    def __iter__(self):
        return iter(self.windows)

    @property
    def all_feasible(self) -> bool:
        """True if every operation has a non-negative-width window."""
        return all(w.feasible for w in self.windows.values())

    def infeasible_operations(self) -> list:
        """Names of operations whose window collapsed (latest < earliest)."""
        return sorted(n for n, w in self.windows.items() if not w.feasible)

    def total_mobility(self) -> int:
        """Sum of window widths (a coarse measure of remaining freedom)."""
        return sum(max(0, w.width) for w in self.windows.values())


class WindowCache:
    """Reusable state for repeated window computations over one graph.

    The synthesis engine recomputes pasap/palap windows after every
    committed binding decision with a locked set that grows by exactly
    one operation.  The pasap/palap stretching itself is order-sensitive
    (each placement depends on the power profile of everything placed
    before it), so the *remaining* operations must genuinely be
    rescheduled — but the committed part of the profile can be carried
    over incrementally instead of being rebuilt from all locked
    operations on every call.  Both directions (forward pasap, reversed
    palap) keep their own :class:`~repro.scheduling.pasap.LockedProfileCache`.

    The caches replay identical float additions in an identical order,
    so windows computed with a cache are bit-for-bit those computed
    without one (the golden engine tests pin this).
    """

    def __init__(self) -> None:
        self.forward = LockedProfileCache()
        self.backward = LockedProfileCache()


def compute_windows(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    time: TimeConstraint,
    locked: Optional[Mapping[str, int]] = None,
    cache: Optional[WindowCache] = None,
) -> WindowSet:
    """Compute the power-feasible window of every operation.

    Args:
        cdfg: Graph under synthesis.
        delays: Per-operation latency.
        powers: Per-operation per-cycle power.
        power: Power budget ``P``.
        time: Latency bound ``T``.
        locked: Start times already fixed by prior binding decisions;
            locked operations get a zero-width window at their lock point.
        cache: Optional :class:`WindowCache` carrying the locked power
            profiles over from a previous call with a smaller locked set
            (the engine's greedy loop); never changes the result.

    Raises:
        PowerInfeasibleError: propagated from pasap/palap when even the
            heuristic stretching cannot place some operation (e.g. a
            single operation's power exceeds ``P``, or locked operations
            already exceed ``T``).
    """
    locked = locked if locked is not None else {}
    pasap_starts = pasap_core(
        cdfg,
        delays,
        powers,
        power,
        locked=locked,
        locked_base=cache.forward if cache is not None else None,
    )
    palap_starts = palap_core(
        cdfg,
        delays,
        powers,
        power,
        time.latency,
        locked=locked,
        locked_base=cache.backward if cache is not None else None,
    )

    windows: Dict[str, Window] = {}
    for name in cdfg.operation_names():
        if name in locked:
            windows[name] = Window(locked[name], locked[name])
        else:
            windows[name] = Window(pasap_starts[name], palap_starts[name])
    return WindowSet(
        windows=windows,
        pasap_starts=pasap_starts,
        palap_starts=palap_starts,
    )


def windows_feasible(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    time: TimeConstraint,
    locked: Optional[Mapping[str, int]] = None,
) -> bool:
    """True when window computation succeeds and every window is non-empty.

    This is the feasibility predicate used by the synthesis engine before
    committing a binding decision.
    """
    try:
        window_set = compute_windows(cdfg, delays, powers, power, time, locked=locked)
    except PowerInfeasibleError:
        return False
    if not window_set.all_feasible:
        return False
    # The pasap schedule must also meet the latency bound, otherwise the
    # power budget forces the computation past T.
    horizon = max(
        window_set.pasap_starts[n] + delays[n] for n in cdfg.operation_names()
    ) if len(cdfg) else 0
    return horizon <= time.latency
