"""Generate golden exact-vs-ilp agreement fixtures (``golden_ilp.json``).

Each case pins, for one small benchmark and one ``(T, P)`` point, the
feasibility verdict and — when feasible — the optimal makespan, as
decided by the exhaustive ``exact`` scheduler with its size cap raised
to cover the benchmark.  ``test_golden_ilp.py`` then asserts that both
exact engines still reproduce these verdicts bit-for-bit.

Regenerate (and say so loudly in the PR) with::

    PYTHONPATH=src python tests/golden/generate_ilp_goldens.py
"""

from __future__ import annotations

import json
import os

from repro.library import default_library
from repro.library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.exact import minimum_latency_under_power
from repro.suite.registry import build_benchmark

HERE = os.path.dirname(os.path.abspath(__file__))

#: (benchmark, latency bound, power budget or None) — all benchmarks
#: small enough for the exhaustive search once its cap is raised.
CASES = [
    ("chain", 26, None),
    ("chain", 26, 10.0),
    ("chain", 23, None),  # below the critical path: infeasible
    ("tree", 7, 15.0),
    ("tree", 6, 12.0),
    ("tree", 5, 7.0),  # power floor forces serialization T=5 cannot hold
    ("butterfly", 9, 15.0),
    ("butterfly", 8, 12.0),
]

#: Exact-search cap that covers every benchmark above.
EXACT_CAP = 16


def main() -> None:
    library = default_library()
    entries = []
    for benchmark, latency, power in CASES:
        cdfg = build_benchmark(benchmark)
        selection = MinPowerSelection().select(cdfg, library)
        delays = selection_delays(selection, cdfg)
        powers = selection_powers(selection, cdfg)
        budget = (
            PowerConstraint.unbounded() if power is None else PowerConstraint(power)
        )
        optimum = minimum_latency_under_power(
            cdfg, delays, powers, budget, horizon=latency, max_operations=EXACT_CAP
        )
        entries.append(
            {
                "benchmark": benchmark,
                "latency": latency,
                "power": power,
                "feasible": optimum is not None,
                "optimal_makespan": optimum,
            }
        )
        print(entries[-1])
    path = os.path.join(HERE, "golden_ilp.json")
    with open(path, "w") as handle:
        json.dump({"exact_cap": EXACT_CAP, "cases": entries}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
