"""Deterministic race-ordering tests on the scripted executor seam.

Every scenario a real race can hit — canonical-first wins, a later
contender certifying before an earlier one, ties, loser cancellation,
deadline expiry mid-flight, all-infeasible verdicts, crashed contenders —
replayed from a :class:`~repro.portfolio.executors.ScriptedExecutor`
script against a :class:`~repro.portfolio.executors.ManualClock`.  No
test here sleeps, spawns a process, or runs a synthesis: the decision
rule is exercised in isolation, which is what makes the orderings
exhaustive rather than racy.
"""

import pytest

from repro.portfolio import PortfolioRunner, portfolio_task, run_portfolio
from repro.portfolio.executors import ManualClock, ScriptedExecutor
from repro.portfolio.runner import DEADLINE_ERROR, EXECUTION_ERROR
from repro.store.priors import Priors
from repro.api.task import SynthesisTask, TaskError

STRATEGIES = ["engine", "pasap", "palap"]
LABELS = ["engine", "pasap+greedy", "palap+greedy"]


def make_task(*, deadline_s=None, strategies=None):
    return portfolio_task(
        "hal",
        latency=17,
        power_budget=12.0,
        strategies=strategies or STRATEGIES,
        deadline_s=deadline_s,
    )


def feasible(area, *, elapsed=0.01):
    return {
        "feasible": True,
        "area": float(area),
        "fu_area": float(area) * 0.8,
        "peak_power": 10.0,
        "latency": 17,
        "registers": 6,
        "backtracks": 0,
        "elapsed": elapsed,
    }


def infeasible(error_type="SynthesisError"):
    return {
        "feasible": False,
        "error": f"scripted {error_type}",
        "error_type": error_type,
        "elapsed": 0.01,
    }


def race(script, *, task=None, priors=None, max_parallel=None):
    executor = ScriptedExecutor(script)
    runner = PortfolioRunner(
        task if task is not None else make_task(),
        executor=executor,
        clock=executor.clock,
        priors=priors if priors is not None else Priors(),
        max_parallel=max_parallel,
    )
    return runner.run(), executor


class TestCanonicalDecision:
    def test_canonical_first_win_cancels_the_rest(self):
        outcome, executor = race([("complete", "engine", feasible(500))])
        assert outcome.winner == "engine"
        assert outcome.record.feasible is True
        assert outcome.record.winner == "engine"
        assert outcome.record.area == 500.0
        assert outcome.cacheable is True
        assert sorted(executor.cancelled) == ["palap+greedy", "pasap+greedy"]
        assert executor.delivered == ["engine"]

    def test_later_win_waits_for_earlier_contenders(self):
        # pasap certifies first, but the race is not decided until the
        # canonically-earlier engine is terminal.
        outcome, executor = race(
            [
                ("complete", "pasap+greedy", feasible(450)),
                ("complete", "engine", infeasible()),
            ]
        )
        assert outcome.winner == "pasap+greedy"
        assert outcome.record.area == 450.0
        assert outcome.cacheable is True
        # palap lost the moment pasap certified, before engine resolved
        assert executor.cancelled == ["palap+greedy"]
        assert executor.delivered == ["pasap+greedy", "engine"]

    def test_canonical_order_beats_arrival_order(self):
        # pasap arrives first with the better area; the engine still wins
        # the no-deadline race because canonical order is the rule.
        outcome, _ = race(
            [
                ("complete", "pasap+greedy", feasible(100)),
                ("complete", "engine", feasible(999)),
            ]
        )
        assert outcome.winner == "engine"
        assert outcome.record.area == 999.0

    def test_stragglers_from_cancelled_losers_are_dropped(self):
        outcome, executor = race(
            [
                ("complete", "engine", feasible(500)),
                ("complete", "pasap+greedy", feasible(1)),  # killed loser
            ]
        )
        assert outcome.winner == "engine"
        assert "pasap+greedy" not in executor.delivered
        statuses = {c["label"]: c["status"] for c in outcome.contenders}
        assert statuses["pasap+greedy"] == "cancelled"

    def test_crash_of_an_earlier_contender_does_not_poison_a_win(self):
        outcome, _ = race(
            [
                ("crash", "engine"),
                ("complete", "pasap+greedy", feasible(450)),
            ]
        )
        assert outcome.winner == "pasap+greedy"
        assert outcome.cacheable is True
        statuses = {c["label"]: c["status"] for c in outcome.contenders}
        assert statuses["engine"] == "error"


class TestInfeasibleAggregation:
    def test_all_infeasible_verdict_is_cacheable_and_canonically_typed(self):
        outcome, _ = race(
            [
                ("complete", "engine", infeasible("PowerBudgetError")),
                ("complete", "pasap+greedy", infeasible("SynthesisError")),
                ("complete", "palap+greedy", infeasible("SynthesisError")),
            ]
        )
        assert outcome.winner is None
        assert outcome.record.feasible is False
        assert outcome.record.error_type == "PowerBudgetError"  # canonical-first's
        assert outcome.cacheable is True

    def test_crash_taints_the_aggregate_as_execution_error(self):
        outcome, _ = race(
            [
                ("complete", "engine", infeasible()),
                ("crash", "pasap+greedy"),
                ("complete", "palap+greedy", infeasible()),
            ]
        )
        assert outcome.winner is None
        assert outcome.record.error_type == EXECUTION_ERROR
        assert outcome.cacheable is False
        by_label = {c["label"]: c for c in outcome.contenders}
        assert by_label["pasap+greedy"]["error_type"] == "WorkerCrash"
        assert "died" in (outcome.record.error or "")

    def test_executor_running_dry_leaves_pending_contenders_untyped(self):
        # a script that never answers palap: the race cannot call the spec
        # infeasible on partial evidence
        outcome, _ = race(
            [
                ("complete", "engine", infeasible()),
                ("complete", "pasap+greedy", infeasible()),
            ]
        )
        assert outcome.record.error_type == EXECUTION_ERROR
        assert outcome.cacheable is False


class TestDeadlineMode:
    def test_collects_all_and_returns_best_area(self):
        outcome, _ = race(
            [
                ("complete", "engine", feasible(500)),
                ("complete", "pasap+greedy", feasible(450)),
                ("complete", "palap+greedy", infeasible()),
            ],
            task=make_task(deadline_s=100.0),
        )
        assert outcome.winner == "pasap+greedy"
        assert outcome.record.area == 450.0
        assert outcome.deadline_expired is False
        assert outcome.cacheable is True

    def test_area_tie_breaks_to_canonical_first(self):
        outcome, _ = race(
            [
                ("complete", "palap+greedy", feasible(450)),
                ("complete", "engine", feasible(450)),
                ("complete", "pasap+greedy", infeasible()),
            ],
            task=make_task(deadline_s=100.0),
        )
        assert outcome.winner == "engine"

    def test_expiry_mid_flight_is_an_uncacheable_deadline_error(self):
        outcome, executor = race(
            [
                ("complete", "engine", infeasible()),
                ("advance", 12.0),  # blows through the 10s budget mid-poll
                ("complete", "pasap+greedy", feasible(450)),
            ],
            task=make_task(deadline_s=10.0),
        )
        assert outcome.winner is None
        assert outcome.deadline_expired is True
        assert outcome.record.error_type == DEADLINE_ERROR
        assert outcome.cacheable is False
        # the in-flight contenders were cancelled, their answers dropped
        assert "pasap+greedy" not in executor.delivered
        assert outcome.elapsed == pytest.approx(12.0)

    def test_expiry_after_a_certified_result_still_returns_it(self):
        outcome, _ = race(
            [
                ("complete", "pasap+greedy", feasible(450)),
                ("advance", 12.0),
            ],
            task=make_task(deadline_s=10.0),
        )
        assert outcome.winner == "pasap+greedy"
        assert outcome.record.feasible is True
        assert outcome.deadline_expired is False
        assert outcome.cacheable is True

    def test_first_certified_seconds_comes_from_the_race_clock(self):
        outcome, _ = race(
            [
                ("advance", 3.0),
                ("complete", "engine", feasible(500)),
            ],
            task=make_task(deadline_s=100.0),
        )
        assert outcome.first_certified_s == pytest.approx(3.0)


class TestLaunchOrder:
    def priors_preferring(self, label):
        priors = Priors()
        priors.observe("hal", "T16|P8|R-", label, feasible=True, elapsed=0.05)
        return priors

    def test_priors_permute_launches_but_not_the_winner(self):
        outcome, executor = race(
            [
                ("complete", "palap+greedy", feasible(600)),
                ("complete", "engine", feasible(500)),
                ("complete", "pasap+greedy", infeasible()),
            ],
            priors=self.priors_preferring("palap+greedy"),
        )
        assert executor.launched[0] == "palap+greedy"
        assert outcome.launch_order[0] == "palap+greedy"
        assert outcome.priors_ranked is True
        assert outcome.winner == "engine"  # canonical rule, not launch order

    def test_empty_priors_launch_canonically(self):
        outcome, executor = race([("complete", "engine", feasible(500))])
        assert outcome.launch_order == LABELS
        assert outcome.priors_ranked is False
        assert executor.launched == LABELS

    def test_max_parallel_staggers_launches_behind_completions(self):
        script = [
            ("complete", "engine", infeasible()),
            ("complete", "pasap+greedy", infeasible()),
            ("complete", "palap+greedy", feasible(700)),
        ]
        outcome, executor = race(script, max_parallel=1)
        # one slot: each launch waits for the previous completion
        assert executor.launched == LABELS
        assert executor.delivered == LABELS
        assert outcome.winner == "palap+greedy"


class TestSeamGuards:
    def test_manual_clock_never_goes_backward(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock() == pytest.approx(2.5)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_scripted_executor_rejects_unknown_events(self):
        executor = ScriptedExecutor([("explode", "engine")])
        runner = PortfolioRunner(
            make_task(), executor=executor, clock=executor.clock, priors=Priors()
        )
        with pytest.raises(ValueError):
            runner.run()

    def test_run_portfolio_rejects_non_portfolio_tasks(self):
        task = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        with pytest.raises(TaskError):
            run_portfolio(task)
