"""Resource-constrained list scheduling (baseline).

A classical HLS baseline: given a fixed allocation (number of instances
per module), schedule operations cycle by cycle, picking among the ready
operations by a priority (default: least mobility first).  It is used

* as a reference point in the ablation benchmarks (resource-constrained
  vs. power-constrained scheduling), and
* inside the two-step baseline of :mod:`repro.scheduling.two_step`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..ir.analysis import alap_times, asap_times, critical_path_length
from ..ir.cdfg import CDFG, CDFGError
from ..library.module import FUModule
from .schedule import Schedule


class ResourceInfeasibleError(Exception):
    """Raised when the allocation cannot execute the graph at all."""


def list_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    module_of: Mapping[str, FUModule],
    allocation: Mapping[str, int],
    latency_hint: Optional[int] = None,
    label: str = "list",
) -> Schedule:
    """Schedule under per-module instance limits.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency.
        powers: Per-operation per-cycle power.
        module_of: Operation name → library module implementing it.
            Virtual operations (constants, no-ops) may be omitted; they
            consume no resource and take zero cycles.
        allocation: Module name → number of available instances.  Modules
            not listed default to one instance.
        latency_hint: Latency used to compute mobility priorities
            (defaults to the critical path length).
        label: Label stored on the resulting schedule.

    Returns:
        A precedence- and resource-legal schedule.  The power profile is
        whatever falls out of resource contention (no power budget here).

    Raises:
        ResourceInfeasibleError: if some required module has a zero
            instance count, or the scheduler fails to make progress.
    """
    schedulable = set(cdfg.schedulable_operations())
    for name in schedulable:
        module = module_of.get(name)
        if module is None:
            raise ResourceInfeasibleError(f"no module assigned to operation {name!r}")
        if allocation.get(module.name, 1) <= 0:
            raise ResourceInfeasibleError(
                f"allocation gives zero instances of {module.name!r}, "
                f"needed by {name!r}"
            )

    latency_hint = latency_hint or critical_path_length(cdfg, dict(delays))
    try:
        alap = alap_times(cdfg, latency_hint, dict(delays))
    except CDFGError:
        alap = {n: 0 for n in cdfg.operation_names()}
    asap = asap_times(cdfg, dict(delays))
    mobility = {n: alap.get(n, 0) - asap.get(n, 0) for n in cdfg.operation_names()}

    start: Dict[str, int] = {}
    finish: Dict[str, int] = {}
    # running[module name] = finish times of currently executing operations
    running: Dict[str, List[int]] = {}

    unscheduled = set(cdfg.operation_names())
    cycle = 0
    total_cycles = sum(delays[n] for n in cdfg.operation_names())
    horizon_guard = max(4 * total_cycles + 16, 64)

    def is_ready(name: str) -> bool:
        return all(
            pred in finish and finish[pred] <= cycle
            for pred in cdfg.predecessors(name)
        )

    while unscheduled:
        if cycle > horizon_guard:
            raise ResourceInfeasibleError(
                "list scheduling exceeded its horizon guard; allocation too small"
            )
        # Release instances whose operations completed by this cycle.
        for module_name in list(running):
            running[module_name] = [f for f in running[module_name] if f > cycle]

        progressed = True
        while progressed:
            # Virtual/zero-delay operations complete instantly and may
            # unlock further ready operations within the same cycle.
            progressed = False
            ready = sorted(
                (n for n in unscheduled if is_ready(n)),
                key=lambda n: (mobility.get(n, 0), n),
            )
            for name in ready:
                if name in schedulable:
                    module = module_of[name]
                    limit = allocation.get(module.name, 1)
                    if len(running.get(module.name, [])) >= limit:
                        continue
                    start[name] = cycle
                    finish[name] = cycle + delays[name]
                    running.setdefault(module.name, []).append(finish[name])
                else:
                    start[name] = cycle
                    finish[name] = cycle + delays[name]
                unscheduled.discard(name)
                if delays[name] == 0:
                    progressed = True
        cycle += 1

    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"allocation": dict(allocation)},
    )


def minimal_allocation(
    cdfg: CDFG,
    module_of: Mapping[str, FUModule],
) -> Dict[str, int]:
    """One instance of every module that some operation needs."""
    allocation: Dict[str, int] = {}
    for name in cdfg.schedulable_operations():
        module = module_of.get(name)
        if module is None:
            raise ResourceInfeasibleError(f"no module assigned to operation {name!r}")
        allocation[module.name] = max(allocation.get(module.name, 0), 1)
    return allocation


def greedy_allocation_for_latency(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    module_of: Mapping[str, FUModule],
    latency: int,
) -> Dict[str, int]:
    """Smallest allocation (found greedily) meeting a latency bound.

    Starts from one instance per needed module and adds an instance of the
    module whose operations are most delayed until the list schedule fits
    in ``latency`` cycles.  Used by the two-step baseline.

    Raises:
        ResourceInfeasibleError: if even a generous allocation cannot meet
            the bound (i.e. the bound is below the critical path).
    """
    if latency < critical_path_length(cdfg, dict(delays)):
        raise ResourceInfeasibleError(
            f"latency {latency} is below the critical path; no allocation can meet it"
        )
    allocation = minimal_allocation(cdfg, module_of)
    ops_per_module: Dict[str, int] = {}
    for name in cdfg.schedulable_operations():
        ops_per_module[module_of[name].name] = ops_per_module.get(module_of[name].name, 0) + 1

    while True:
        schedule = list_schedule(cdfg, delays, powers, module_of, allocation)
        if schedule.makespan <= latency:
            return allocation
        # Add an instance of the module with the largest (ops / instances)
        # pressure that is still below its operation count.
        candidates = [
            (ops_per_module[m] / allocation[m], m)
            for m in allocation
            if allocation[m] < ops_per_module[m]
        ]
        if not candidates:
            # Fully parallel allocation still misses the bound; give up.
            raise ResourceInfeasibleError(
                f"cannot meet latency {latency} even with one instance per operation"
            )
        _, module_name = max(candidates)
        allocation[module_name] += 1
