"""The exploration subsystem: cached, adaptive design-space exploration.

Sweeping the (time, power) constraint space at paper scale means
re-visiting the same (graph, library, T, P) points over and over — across
grid sweeps, bisection probes, CLI invocations and worker processes.
This package makes that cheap and makes the sweeps themselves adaptive:

* :class:`~repro.explore.cache.ResultCache` — a content-addressed,
  on-disk cache of task results keyed by the canonical hash of the task
  spec (:meth:`repro.api.task.SynthesisTask.cache_key`), consulted by
  :func:`repro.api.batch.run_task` / :func:`~repro.api.batch.run_batch`,
  with an append-only JSONL journal so killed grids restart without
  rework,
* :func:`~repro.explore.refine.adaptive_power_sweep` — an adaptive
  frontier refiner that replaces fixed power grids with interval
  bisection, probing only where the reported area changes and
  guaranteeing no frontier step wider than the requested resolution.

Quickstart::

    from repro.explore import ResultCache, adaptive_power_sweep
    from repro.library import default_library
    from repro.suite import hal_cdfg

    cache = ResultCache("~/.cache/repro")
    sweep = adaptive_power_sweep(
        hal_cdfg(), default_library(), latency=17, resolution=1.0, cache=cache
    )
    print(cache.stats)          # second call: all hits, zero synthesis
"""

from .cache import JOURNAL_NAME, CacheStats, ResultCache, iter_journal, load_journal
from .refine import AdaptiveSweepResult, adaptive_power_sweep

__all__ = [
    "AdaptiveSweepResult",
    "CacheStats",
    "JOURNAL_NAME",
    "ResultCache",
    "adaptive_power_sweep",
    "iter_journal",
    "load_journal",
]
