"""``repro.lp``: a zero-dependency exact ILP scheduling backend.

The subsystem has three layers:

* :mod:`repro.lp.model` — the :class:`LinearProgram` container over
  exact :class:`fractions.Fraction` arithmetic;
* :mod:`repro.lp.simplex` / :mod:`repro.lp.branch_bound` — a bounded
  -variable two-phase simplex and a group-branching branch-and-bound,
  both pure stdlib, whose verdicts are proofs rather than tolerance
  calls; :mod:`repro.lp.solver` makes the MILP backend pluggable
  (:data:`MILP_SOLVERS`) for environments that do ship a real solver;
* :mod:`repro.lp.formulation` — the time-indexed scheduling formulation
  (assignment / precedence / per-cycle power rows over ASAP/ALAP
  mobility windows) with register pressure as a first-class constraint
  dimension in two memory models.

Registering this package adds the ``ilp`` strategy to the scheduler
registry: a second exact oracle next to ``exact``, minus the hard size
cap, plus the ability to honour a task's ``register_budget``.
"""

from .branch_bound import LIMIT, BranchBoundResult, solve_milp
from .formulation import (
    MEMORY_MODELS,
    ILPInfeasibleError,
    ILPLimitError,
    ILPScheduleError,
    ScheduleModel,
    build_schedule_model,
    ilp_schedule,
    minimum_registers,
    schedule_register_usage,
    solve_model,
)
from .model import LinearProgram, LPError, as_fraction
from .simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, SimplexSolution, solve_lp
from .solver import MILP_SOLVERS, solve

__all__ = [
    "LinearProgram",
    "LPError",
    "as_fraction",
    "SimplexSolution",
    "solve_lp",
    "BranchBoundResult",
    "solve_milp",
    "MILP_SOLVERS",
    "solve",
    "OPTIMAL",
    "INFEASIBLE",
    "UNBOUNDED",
    "LIMIT",
    "MEMORY_MODELS",
    "ILPScheduleError",
    "ILPInfeasibleError",
    "ILPLimitError",
    "ScheduleModel",
    "build_schedule_model",
    "solve_model",
    "ilp_schedule",
    "minimum_registers",
    "schedule_register_usage",
]


# --------------------------------------------------------------------------- #
# Strategy registration
# --------------------------------------------------------------------------- #
from ..registries import SCHEDULERS as _SCHEDULERS


@_SCHEDULERS.register("ilp")
def _ilp_strategy(ctx) -> None:
    """Exact time-indexed ILP scheduling (optionally register-budgeted)."""
    ctx.schedule = ilp_schedule(
        ctx.cdfg,
        ctx.delays,
        ctx.powers,
        ctx.power_constraint,
        ctx.require_latency("ilp"),
        register_budget=ctx.task.register_budget,
        memory_model=ctx.options.ilp_memory_model,
        node_limit=ctx.options.ilp_node_limit,
        label=ctx.strategy_label("ilp"),
    )


#: The ilp strategy is the only scheduler that enforces a task's
#: register budget; the pipeline rejects budgeted tasks for the others.
_ilp_strategy.supports_register_budget = True
