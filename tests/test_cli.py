"""Unit tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.cli import EXIT_INFEASIBLE, EXIT_VIOLATIONS, build_parser, main
from repro.ir import save
from repro.suite import hal_cdfg


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "-b", "bogus", "-T", "17"])


class TestTable1AndBenchmarks:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Mult (ser.)" in out and "339" in out

    def test_benchmarks_listing(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("hal", "cosine", "elliptic"):
            assert name in out


class TestSynthesize:
    def test_feasible_run(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "12", "--schedule", "--datapath"])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthesis of 'hal'" in out
        assert "cycle" in out          # schedule printed
        assert "datapath for" in out   # datapath printed

    def test_infeasible_run_exit_code(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "2"])
        assert code == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err

    def test_verilog_export(self, tmp_path, capsys):
        target = tmp_path / "hal.v"
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "12", "--verilog", str(target)])
        assert code == 0
        assert target.read_text().startswith("module")

    def test_cdfg_file_input(self, tmp_path, capsys):
        path = tmp_path / "hal.json"
        save(hal_cdfg(), path)
        code = main(["synthesize", "--cdfg", str(path), "-T", "17", "-P", "12"])
        assert code == 0
        assert "synthesis of 'hal'" in capsys.readouterr().out


class TestSchedulerFlag:
    def test_synthesize_with_registry_scheduler(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "20", "--scheduler", "pasap",
                     "-P", "15"])
        assert code == 0
        assert "synthesis of 'hal'" in capsys.readouterr().out

    def test_unknown_scheduler_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["synthesize", "-b", "hal", "-T", "17", "--scheduler", "bogus"]
            )

    def test_power_oblivious_scheduler_under_budget_is_infeasible(self, capsys):
        # asap ignores P; the pipeline's verify pass must flag the violation.
        code = main(["synthesize", "-b", "hal", "-T", "20", "-P", "5",
                     "--scheduler", "asap"])
        assert code == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err


class TestBatch:
    def _write_batch(self, tmp_path, payload):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_batch_runs_tasks_and_prints_table(self, tmp_path, capsys):
        path = self._write_batch(
            tmp_path,
            [
                {"graph": "hal", "latency": 17, "power_budget": 12.0, "label": "ok"},
                {"graph": "hal", "latency": 17, "power_budget": 2.0, "label": "probe"},
            ],
        )
        assert main(["batch", path]) == 0
        out = capsys.readouterr().out
        assert "Batch results" in out
        assert "1/2 tasks feasible" in out
        assert "probe" in out

    def test_batch_with_sweep_and_jobs_and_output(self, tmp_path, capsys):
        path = self._write_batch(
            tmp_path,
            {"sweeps": [{"graph": "hal", "latency": 17,
                         "power_budgets": [10.0, 12.0, 16.0, 20.0]}]},
        )
        results = tmp_path / "results.json"
        assert main(["batch", path, "--jobs", "2", "-o", str(results)]) == 0
        assert "4/4 tasks feasible" in capsys.readouterr().out
        payload = json.loads(results.read_text())
        assert payload["summary"]["total"] == 4
        assert payload["summary"]["feasible"] == 4
        assert payload["summary"]["certificate_errors"] == 0
        assert len(payload["records"]) == 4
        assert all(r["feasible"] for r in payload["records"])

    def test_malformed_batch_file(self, tmp_path, capsys):
        path = self._write_batch(tmp_path, [{"graph": "hal", "lateny": 17}])
        assert main(["batch", path]) == 1
        assert "bad batch file" in capsys.readouterr().err

    def test_type_malformed_specs_report_cleanly(self, tmp_path, capsys):
        # Non-numeric latency and a scalar sweep budget must not traceback.
        path = self._write_batch(tmp_path, [{"graph": "hal", "latency": "abc"}])
        assert main(["batch", path]) == 1
        assert "bad batch file" in capsys.readouterr().err
        path = self._write_batch(
            tmp_path, {"sweeps": [{"graph": "hal", "latency": 17, "power_budgets": 5}]}
        )
        assert main(["batch", path]) == 1
        assert "bad batch file" in capsys.readouterr().err

    def test_fully_infeasible_batch_exits_2(self, tmp_path, capsys):
        path = self._write_batch(
            tmp_path,
            [{"graph": "hal", "latency": 17, "power_budget": 2.0}],
        )
        assert main(["batch", path]) == EXIT_INFEASIBLE
        assert "0/1 tasks feasible" in capsys.readouterr().out

    def test_unknown_scheduler_in_parallel_batch_reports_bad_task(self, tmp_path, capsys):
        path = self._write_batch(
            tmp_path,
            [
                {"graph": "hal", "latency": 17, "power_budget": 12.0},
                {"graph": "hal", "latency": 17, "scheduler": "bogus"},
            ],
        )
        assert main(["batch", path, "--jobs", "2"]) == 1
        assert "bad task" in capsys.readouterr().err

    def test_numeric_string_fields_are_coerced(self, tmp_path, capsys):
        path = self._write_batch(
            tmp_path, [{"graph": "hal", "latency": "20", "scheduler": "alap",
                        "verify": False}]
        )
        assert main(["batch", path]) == 0
        assert "1/1 tasks feasible" in capsys.readouterr().out


class TestSweepAndProfile:
    def test_sweep(self, capsys):
        code = main(["sweep", "-b", "hal", "-T", "17", "--steps", "3", "--cap", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Power/area sweep" in out
        assert "hal (T=17)" in out

    def test_sweep_infeasible_latency(self, capsys):
        code = main(["sweep", "-b", "hal", "-T", "5", "--steps", "3"])
        assert code == EXIT_INFEASIBLE

    def test_profile_unconstrained(self, capsys):
        code = main(["profile", "-b", "hal"])
        assert code == 0
        assert "power profile" in capsys.readouterr().out

    def test_profile_figure1(self, capsys):
        code = main(["profile", "-b", "hal", "-T", "17", "-P", "11"])
        assert code == 0
        out = capsys.readouterr().out
        assert "undesired" in out and "desired" in out


class TestVerifyFlag:
    def test_verify_prints_certificate_and_succeeds(self, capsys):
        code = main(["synthesize", "-b", "hal", "-T", "17", "-P", "12", "--verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "certificate for 'hal': ok" in out

    def test_verify_works_for_classical_strategies(self, capsys):
        code = main(["synthesize", "-b", "tree", "-T", "12", "-P", "30",
                     "--scheduler", "palap", "--verify"])
        assert code == 0
        assert "certificate for 'tree': ok" in capsys.readouterr().out


class TestFuzz:
    def test_fuzz_smoke_is_clean(self, capsys):
        code = main(["fuzz", "--seeds", "2", "--families", "chain", "tree"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no violations" in out
        assert "chain: 2 case(s)" in out
        assert "tree: 2 case(s)" in out

    def test_fuzz_json_report_schema(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = main(["fuzz", "--seeds", "2", "--families", "mesh",
                     "--schedulers", "pasap", "engine", "-o", str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        for key in ("config", "ok", "cases", "runs", "feasible", "cached",
                    "disagreements", "families", "violations", "elapsed"):
            assert key in payload
        assert payload["ok"] is True
        assert payload["violations"] == []
        assert payload["cases"] == 2
        assert payload["config"]["families"] == ["mesh"]
        assert set(payload["families"]) == {"mesh"}

    def test_fuzz_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--families", "bogus"])

    def test_fuzz_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--schedulers", "bogus"])

    def test_fuzz_resumes_from_cache(self, tmp_path, capsys):
        import re

        def resumed_count(out):
            return int(re.search(r"(\d+) resumed from cache", out).group(1))

        cache_dir = str(tmp_path / "cache")
        args = ["fuzz", "--seeds", "2", "--families", "chain",
                "--schedulers", "pasap", "asap", "--cache-dir", cache_dir]
        assert main(args) == 0
        assert resumed_count(capsys.readouterr().out) == 0

        assert main(args + ["--resume"]) == 0
        assert resumed_count(capsys.readouterr().out) > 0

    def test_exit_violations_code_is_distinct(self):
        assert EXIT_VIOLATIONS not in (0, 1, EXIT_INFEASIBLE)


class TestCacheFlags:
    def test_resume_without_cache_dir_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["sweep", "-b", "hal", "-T", "17", "--steps", "3", "--cap", "60",
                  "--resume"])

    def test_sweep_records_then_resumes(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["sweep", "-b", "hal", "-T", "17", "--steps", "3", "--cap", "60",
                "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 hit(s)" in first  # --cache-dir alone records, never reads
        assert (tmp_path / "cache" / "journal.jsonl").exists()

        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "0 miss(es)" in second and "0 new record(s)" in second
        assert "Power/area sweep" in second

    def test_adaptive_rejects_grid_only_flags(self):
        base = ["sweep", "-b", "hal", "-T", "17", "--adaptive"]
        with pytest.raises(SystemExit):
            main(base + ["--steps", "3"])
        with pytest.raises(SystemExit):
            main(base + ["--jobs", "4"])

    def test_adaptive_sweep_reports_probes(self, tmp_path, capsys):
        code = main(["sweep", "-b", "hal", "-T", "17", "--cap", "40",
                     "--adaptive", "--resolution", "4.0",
                     "--cache-dir", str(tmp_path / "c"), "--resume"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive refinement:" in out
        assert "resolution 4" in out

    def test_batch_resume_skips_completed_tasks(self, tmp_path, capsys):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(
            [{"graph": "hal", "latency": 17, "power_budget": p} for p in (9.0, 12.0)]
        ))
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", str(path), "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["batch", str(path), "--cache-dir", cache_dir, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 cache hit(s), 0 computed" in out
        assert "2 hit(s), 0 miss(es)" in out


class TestBatchCertificateGate:
    def test_batch_exits_violations_on_certificate_errors(self, tmp_path, capsys, monkeypatch):
        from repro.api.batch import BatchResults, TaskResult

        def rejected_batch(tasks, **_kwargs):
            return BatchResults(
                TaskResult(
                    task=t,
                    feasible=False,
                    error="latency bound exceeded (made up)",
                    error_type="CertificateError",
                )
                for t in tasks
            )

        monkeypatch.setattr("repro.cli.run_batch", rejected_batch)
        path = tmp_path / "batch.json"
        path.write_text(json.dumps([{"graph": "hal", "latency": 17}]))
        assert main(["batch", str(path)]) == EXIT_VIOLATIONS
        assert "failed certificate verification" in capsys.readouterr().err


class TestServeAndSubmit:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.serve import start_server

        with start_server(workers=2, state_dir=tmp_path / "state") as handle:
            yield handle

    def _batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(
            [{"graph": "hal", "latency": 17, "power_budget": p} for p in (10.0, 2.0)]
        ))
        return str(path)

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642 and args.workers == 2

    def test_submit_without_wait_prints_job_ids(self, tmp_path, capsys, server):
        code = main(["submit", self._batch_file(tmp_path), "--url", server.url])
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted 2 job(s)" in out
        assert "job-" in out

    def test_submit_wait_prints_results_table(self, tmp_path, capsys, server):
        code = main(["submit", self._batch_file(tmp_path), "--url", server.url, "--wait"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Served results" in out
        assert "1/2 tasks feasible" in out

        # identical resubmission: answered entirely from the server's cache
        code = main(["submit", self._batch_file(tmp_path), "--url", server.url, "--wait"])
        assert code == 0
        assert "2 cache hit(s), 0 computed" in capsys.readouterr().out

    def test_submit_bad_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["submit", str(path)]) == 1
        assert "bad batch file" in capsys.readouterr().err

    def test_submit_unreachable_server_exits_1(self, tmp_path, capsys):
        code = main(["submit", self._batch_file(tmp_path),
                     "--url", "http://127.0.0.1:1", "--timeout", "0.3"])
        assert code == 1
        assert "server error" in capsys.readouterr().err

    def test_fully_infeasible_served_batch_exits_2(self, tmp_path, capsys, server):
        path = tmp_path / "infeasible.json"
        path.write_text(json.dumps([{"graph": "hal", "latency": 17, "power_budget": 2.0}]))
        code = main(["submit", str(path), "--url", server.url, "--wait"])
        assert code == EXIT_INFEASIBLE
