"""Unit tests for repro.binding.intervals."""

import pytest

from repro.binding.intervals import (
    Interval,
    any_overlap,
    intervals_overlap,
    max_overlap_count,
    union_length,
)


class TestInterval:
    def test_basic_properties(self):
        i = Interval(2, 6)
        assert i.length == 4
        assert not i.empty
        assert Interval(3, 3).empty

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 2)

    def test_overlap_symmetric(self):
        a, b = Interval(0, 4), Interval(3, 6)
        assert a.overlaps(b) and b.overlaps(a)

    def test_touching_intervals_do_not_overlap(self):
        assert not Interval(0, 4).overlaps(Interval(4, 8))

    def test_empty_interval_never_overlaps(self):
        assert not Interval(2, 2).overlaps(Interval(0, 10))

    def test_contains_cycle(self):
        i = Interval(2, 5)
        assert i.contains_cycle(2) and i.contains_cycle(4)
        assert not i.contains_cycle(5) and not i.contains_cycle(1)

    def test_shift_and_merge(self):
        assert Interval(1, 3).shifted(2) == Interval(3, 5)
        assert Interval(1, 3).merge(Interval(6, 8)) == Interval(1, 8)

    def test_ordering(self):
        assert sorted([Interval(3, 5), Interval(1, 2)])[0] == Interval(1, 2)


class TestCollections:
    def test_intervals_overlap(self):
        assert intervals_overlap([Interval(0, 3), Interval(2, 4)])
        assert not intervals_overlap([Interval(0, 2), Interval(2, 4), Interval(4, 9)])

    def test_any_overlap(self):
        assert any_overlap(Interval(1, 3), [Interval(5, 8), Interval(2, 4)])
        assert not any_overlap(Interval(1, 3), [Interval(3, 8)])

    def test_union_length(self):
        assert union_length([Interval(0, 3), Interval(2, 5), Interval(7, 9)]) == 7
        assert union_length([]) == 0
        assert union_length([Interval(1, 1)]) == 0

    def test_max_overlap_count(self):
        spans = [Interval(0, 4), Interval(1, 3), Interval(2, 6), Interval(10, 12)]
        assert max_overlap_count(spans) == 3
        assert max_overlap_count([]) == 0
        # touching intervals never count as simultaneous
        assert max_overlap_count([Interval(0, 2), Interval(2, 4)]) == 1
