"""Synthesis result container and metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..datapath.area import AreaBreakdown
from ..datapath.rtl import Datapath
from ..scheduling.constraints import SynthesisConstraints
from ..scheduling.schedule import Schedule


class SynthesisError(Exception):
    """Base class for synthesis failures."""


class TimingInfeasibleError(SynthesisError):
    """The latency bound cannot be met with any module selection."""


class PowerInfeasibleSynthesisError(SynthesisError):
    """The power budget cannot be met under the latency bound."""


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run.

    Attributes:
        datapath: The bound datapath (instances, registers, muxes).
        schedule: The final schedule with post-binding delays and powers.
        constraints: The (T, P) constraints the run honoured.
        area: Area breakdown of the datapath.
        trace: Human-readable log of the greedy decisions taken.
        backtracks: Number of times the engine invoked the
            backtrack-and-lock rule.
    """

    datapath: Datapath
    schedule: Schedule
    constraints: SynthesisConstraints
    area: AreaBreakdown
    trace: List[str] = field(default_factory=list)
    backtracks: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def total_area(self) -> float:
        return self.area.total

    @property
    def fu_area(self) -> float:
        return self.area.functional_units

    @property
    def latency(self) -> int:
        return self.schedule.makespan

    @property
    def peak_power(self) -> float:
        return self.schedule.peak_power

    def allocation_summary(self) -> Dict[str, int]:
        return self.datapath.allocation_summary()

    def verify(self) -> None:
        """Re-check every contract of the result; raise on violation.

        Delegates to the independent certificate checker
        (:func:`repro.verify.check_certificate`), which re-derives
        precedence, the latency bound, the per-cycle power profile, FU
        sharing, binding/module consistency, register lifetimes,
        interconnect and the area accounting from scratch.

        Raises:
            repro.verify.CertificateError: (a :class:`SynthesisError` and
                a :class:`~repro.scheduling.schedule.ScheduleError`)
                listing every violation found.
        """
        from ..verify.certificate import check_certificate  # avoid an import cycle

        check_certificate(self).raise_if_violations()

    def certify(self):
        """The non-raising form of :meth:`verify`.

        Returns:
            The full :class:`repro.verify.CertificateReport` (``.ok``,
            ``.violations``) instead of raising.
        """
        from ..verify.certificate import check_certificate  # avoid an import cycle

        return check_certificate(self)

    def describe(self) -> str:
        lines = [
            f"synthesis of {self.schedule.cdfg.name!r}: "
            f"T<={self.constraints.time.latency}, "
            f"P<={self.constraints.power.max_power:g}",
            f"  area: {self.area.describe()}",
            f"  latency used: {self.latency} cycles",
            f"  peak power: {self.peak_power:.2f}",
            f"  allocation: {self.allocation_summary()}",
            f"  backtracks: {self.backtracks}",
        ]
        return "\n".join(lines)
