#!/usr/bin/env python3
"""Quickstart for the exact ILP scheduling backend (``repro.lp``).

Run with::

    python examples/ilp_quickstart.py

This walks through what the ``ilp`` strategy adds over the rest of the
scheduler registry:

1. a *certified optimal* schedule on a benchmark too large for the
   exhaustive ``exact`` search (its default cap is 12 operations),
2. a register budget ``R`` as a first-class constraint next to the
   latency bound ``T`` and the power budget ``P``,
3. the schedulable register floor at a latency (``minimum_registers``),
   with a provable infeasibility verdict one register below it,
4. the raw LP/ILP core underneath — a zero-dependency exact simplex and
   branch-and-bound over rational arithmetic.
"""

from __future__ import annotations

from fractions import Fraction

from repro import SynthesisTask, check_certificate
from repro.lp import (
    LinearProgram,
    ILPInfeasibleError,
    minimum_registers,
    schedule_register_usage,
    solve_milp,
)


def main() -> None:
    # 1. mesh has 18 operations — beyond the exhaustive exact search's
    #    default cap — yet the ILP returns the *proven* optimal makespan.
    task = SynthesisTask(graph="mesh", latency=14, power_budget=20.0, scheduler="ilp")
    result = task.run()
    schedule = result.schedule
    print(
        f"mesh, T<=14, P<=20 via ilp: optimal makespan "
        f"{schedule.metadata['optimal_makespan']} "
        f"({schedule.metadata['ilp_nodes']} branch-and-bound node(s))"
    )
    report = check_certificate(result)
    print(f"independent certificate: ok={report.ok} ({len(report.checks)} checks)")
    print()

    # 2. The same task with a register budget: only the ilp scheduler can
    #    guarantee R, and the certificate checker re-verifies it.
    budgeted = SynthesisTask(
        graph="mesh",
        latency=14,
        power_budget=20.0,
        register_budget=8,
        scheduler="ilp",
    ).run()
    usage = schedule_register_usage(budgeted.schedule)
    print(f"with R<=8: peak register usage {usage} (budget honoured: {usage <= 8})")
    print()

    # 3. The register floor: the smallest R any schedule achieves at this
    #    latency.  One register below it is *provably* infeasible.
    cdfg = budgeted.schedule.cdfg
    delays = budgeted.schedule.delays
    powers = budgeted.schedule.powers
    floor = minimum_registers(cdfg, delays, powers, 14)
    print(f"register floor at T=14: {floor}")
    try:
        SynthesisTask(
            graph="mesh",
            latency=14,
            register_budget=floor - 1,
            scheduler="ilp",
        ).run()
        raise AssertionError("should have been infeasible")
    except ILPInfeasibleError as exc:
        print(f"R={floor - 1} is infeasible, as proven: {exc}")
    print()

    # 4. The core is an ordinary exact MILP solver: a two-variable
    #    knapsack, solved over rationals with proof-grade verdicts.
    lp = LinearProgram("tiny-knapsack")
    a = lp.add_binary("a")
    b = lp.add_binary("b")
    lp.add_constraint({a: 2, b: 3}, "<=", 4)
    lp.set_objective({a: -5, b: -4})  # maximize 5a + 4b
    outcome = solve_milp(lp)
    print(
        f"tiny knapsack: status={outcome.status}, "
        f"value={-outcome.objective}, picks="
        f"{[name for name, i in (('a', a), ('b', b)) if outcome.values[i] == Fraction(1)]}"
    )


if __name__ == "__main__":
    main()
