"""Unit tests for the strategy registries (repro.registries)."""

import pytest

from repro.registries import (
    BINDERS,
    LIBRARIES,
    SCHEDULERS,
    SELECTORS,
    DuplicateStrategyError,
    StrategyRegistry,
    UnknownStrategyError,
)


class TestStrategyRegistry:
    def test_register_and_get(self):
        registry = StrategyRegistry("thing")
        registry.register("a", lambda: 1)
        assert registry.get("a")() == 1

    def test_decorator_registration(self):
        registry = StrategyRegistry("thing")

        @registry.register("decorated")
        def strategy():
            return "ok"

        assert strategy() == "ok"  # decorator returns the function unchanged
        assert registry.get("decorated") is strategy

    def test_unknown_name_raises_with_known_names(self):
        registry = StrategyRegistry("scheduler")
        registry.register("asap", lambda: None)
        with pytest.raises(UnknownStrategyError) as excinfo:
            registry.get("bogus")
        message = str(excinfo.value)
        assert "bogus" in message and "asap" in message

    def test_unknown_strategy_error_pickles(self):
        # Batch workers ship this exception across the process boundary.
        import pickle

        error = UnknownStrategyError("scheduler", "bogus", ["asap", "engine"])
        restored = pickle.loads(pickle.dumps(error))
        assert isinstance(restored, UnknownStrategyError)
        assert str(restored) == str(error)
        assert (restored.kind, restored.name, restored.known) == (
            "scheduler",
            "bogus",
            ["asap", "engine"],
        )

    def test_duplicate_rejected_unless_replace(self):
        registry = StrategyRegistry("thing")
        registry.register("x", lambda: 1)
        with pytest.raises(DuplicateStrategyError):
            registry.register("x", lambda: 2)
        registry.register("x", lambda: 2, replace=True)
        assert registry.get("x")() == 2

    def test_names_preserve_order_and_membership(self):
        registry = StrategyRegistry("thing")
        for name in ("c", "a", "b"):
            registry.register(name, name)
        assert registry.names() == ["c", "a", "b"]
        assert "a" in registry and "z" not in registry
        assert len(registry) == 3

    def test_unregister(self):
        registry = StrategyRegistry("thing")
        registry.register("gone", 1)
        registry.unregister("gone")
        assert "gone" not in registry
        registry.unregister("never-there")  # no error

    def test_bad_name_rejected(self):
        registry = StrategyRegistry("thing")
        with pytest.raises(ValueError):
            registry.register("", lambda: None)


class TestBuiltinRegistrations:
    def test_all_paper_schedulers_registered(self):
        for name in (
            "asap",
            "alap",
            "list",
            "force_directed",
            "pasap",
            "palap",
            "two_step",
            "exact",
            "engine",
        ):
            assert name in SCHEDULERS, name

    def test_binders_and_selectors_and_libraries(self):
        assert {"greedy", "naive"} <= set(BINDERS.names())
        assert {"min_power", "min_area", "min_latency"} <= set(SELECTORS.names())
        assert {"table1", "default", "single"} <= set(LIBRARIES.names())

    def test_library_factories_build(self):
        table1 = LIBRARIES.get("table1")()
        assert len(table1) > 0
        assert LIBRARIES.get("default")().name == table1.name


class TestCustomStrategyPluggability:
    def test_registered_scheduler_is_usable_by_name(self, hal, library):
        """A scheduler added via the decorator runs through the pipeline."""
        from repro.api import Pipeline, SynthesisTask
        from repro.scheduling.asap import asap_schedule

        @SCHEDULERS.register("custom_asap_for_test")
        def _custom(ctx):
            ctx.schedule = asap_schedule(ctx.cdfg, ctx.delays, ctx.powers)

        try:
            task = SynthesisTask(
                graph="hal", scheduler="custom_asap_for_test", verify=False
            )
            result = Pipeline.default().run(task)
            assert result.schedule.respects_precedence()
        finally:
            SCHEDULERS.unregister("custom_asap_for_test")

    def test_unknown_scheduler_surfaces_in_pipeline(self):
        from repro.api import Pipeline, SynthesisTask

        task = SynthesisTask(graph="hal", latency=17, scheduler="not_a_scheduler")
        with pytest.raises(UnknownStrategyError):
            Pipeline.default().run(task)
