"""Functional-unit library registry and the paper's default library.

:func:`default_library` returns exactly Table 1 of the reproduced paper:

    ============  =========  =====  =========  =====
    Module        Oprs       Area   Clk-cyc.   P
    ============  =========  =====  =========  =====
    add           {+}        87     1          2.5
    sub           {-}        87     1          2.5
    comp          {>}        8      1          2.5
    ALU           {+,-,>}    97     1          2.5
    Mult (ser.)   {*}        103    4          2.7
    Mult (par.)   {*}        339    2          8.1
    input         imp        16     1          0.2
    output        xpt        16     1          1.7
    ============  =========  =====  =========  =====

The multi-implementation structure (single-function adder vs.
multi-function ALU, serial vs. parallel multiplier) is what lets the
combined synthesis trade speed and power against area.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..ir.operation import OpType
from .module import FUModule, LibraryError


class FULibrary:
    """A named collection of :class:`FUModule` definitions."""

    def __init__(self, modules: Iterable[FUModule] = (), name: str = "library") -> None:
        self.name = name
        self._modules: Dict[str, FUModule] = {}
        for module in modules:
            self.add(module)

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    def add(self, module: FUModule) -> FUModule:
        """Register a module; names must be unique."""
        if module.name in self._modules:
            raise LibraryError(f"duplicate module name: {module.name!r}")
        self._modules[module.name] = module
        return module

    def remove(self, name: str) -> None:
        if name not in self._modules:
            raise LibraryError(f"unknown module: {name!r}")
        del self._modules[name]

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[FUModule]:
        return iter(self._modules.values())

    def module(self, name: str) -> FUModule:
        """Look up a module by name."""
        try:
            return self._modules[name]
        except KeyError:
            raise LibraryError(f"unknown module: {name!r}") from None

    def modules(self) -> List[FUModule]:
        """All modules, in registration order."""
        return list(self._modules.values())

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def candidates(self, optype: OpType) -> List[FUModule]:
        """All modules able to execute ``optype`` (registration order)."""
        return [m for m in self._modules.values() if m.supports(optype)]

    def supports(self, optype: OpType) -> bool:
        """True if at least one module implements ``optype``."""
        return any(m.supports(optype) for m in self._modules.values())

    def cheapest(self, optype: OpType) -> FUModule:
        """Smallest-area module for ``optype``."""
        candidates = self.candidates(optype)
        if not candidates:
            raise LibraryError(f"no module implements {optype.value!r}")
        return min(candidates, key=lambda m: (m.area, m.latency, m.power))

    def fastest(self, optype: OpType) -> FUModule:
        """Lowest-latency module for ``optype`` (ties broken by area)."""
        candidates = self.candidates(optype)
        if not candidates:
            raise LibraryError(f"no module implements {optype.value!r}")
        return min(candidates, key=lambda m: (m.latency, m.area, m.power))

    def lowest_power(self, optype: OpType) -> FUModule:
        """Lowest per-cycle power module for ``optype``."""
        candidates = self.candidates(optype)
        if not candidates:
            raise LibraryError(f"no module implements {optype.value!r}")
        return min(candidates, key=lambda m: (m.power, m.area, m.latency))

    def restricted(self, names: Iterable[str], name: Optional[str] = None) -> "FULibrary":
        """A new library containing only the listed modules."""
        return FULibrary([self.module(n) for n in names], name=name or f"{self.name}.restricted")

    def describe(self) -> str:
        """Multi-line description of the library (used in reports)."""
        lines = [f"library {self.name!r} ({len(self)} modules)"]
        lines.extend(f"  {module.describe()}" for module in self._modules.values())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FULibrary(name={self.name!r}, modules={list(self._modules)})"


# --------------------------------------------------------------------------- #
# Paper library (Table 1)
# --------------------------------------------------------------------------- #
def default_library() -> FULibrary:
    """The functional-unit library from Table 1 of the paper."""
    return FULibrary(
        [
            FUModule.make("add", {OpType.ADD}, area=87, latency=1, power=2.5),
            FUModule.make("sub", {OpType.SUB}, area=87, latency=1, power=2.5),
            FUModule.make("comp", {OpType.GT}, area=8, latency=1, power=2.5),
            FUModule.make("ALU", {OpType.ADD, OpType.SUB, OpType.GT}, area=97, latency=1, power=2.5),
            FUModule.make("Mult (ser.)", {OpType.MUL}, area=103, latency=4, power=2.7),
            FUModule.make("Mult (par.)", {OpType.MUL}, area=339, latency=2, power=8.1),
            FUModule.make("input", {OpType.INPUT}, area=16, latency=1, power=0.2),
            FUModule.make("output", {OpType.OUTPUT}, area=16, latency=1, power=1.7),
        ],
        name="date03-table1",
    )


def single_implementation_library() -> FULibrary:
    """A reduced library with exactly one module per operation type.

    Used by the library-ablation benchmark: without the ALU and without a
    choice of multiplier implementation, the synthesizer loses the
    speed/power-vs-area trade-off the paper exploits.
    """
    return FULibrary(
        [
            FUModule.make("add", {OpType.ADD}, area=87, latency=1, power=2.5),
            FUModule.make("sub", {OpType.SUB}, area=87, latency=1, power=2.5),
            FUModule.make("comp", {OpType.GT}, area=8, latency=1, power=2.5),
            FUModule.make("Mult (par.)", {OpType.MUL}, area=339, latency=2, power=8.1),
            FUModule.make("input", {OpType.INPUT}, area=16, latency=1, power=0.2),
            FUModule.make("output", {OpType.OUTPUT}, area=16, latency=1, power=1.7),
        ],
        name="single-implementation",
    )


#: Rows of Table 1 as plain tuples (module, ops, area, cycles, power); kept
#: verbatim so the Table-1 benchmark can print exactly what the paper shows.
TABLE1_ROWS = [
    ("add", "{+}", 87, 1, 2.5),
    ("sub", "{-}", 87, 1, 2.5),
    ("comp", "{>}", 8, 1, 2.5),
    ("ALU", "{+,-,>}", 97, 1, 2.5),
    ("Mult (ser.)", "{*}", 103, 4, 2.7),
    ("Mult (par.)", "{*}", 339, 2, 8.1),
    ("input", "imp", 16, 1, 0.2),
    ("output", "xpt", 16, 1, 1.7),
]
