"""Unit tests for the Pipeline: pass composition and strategy matrix."""

import pytest

from repro.api import Pipeline, SynthesisTask
from repro.api.pipeline import PipelineError
from repro.api.task import TaskError
from repro.synthesis.result import SynthesisError


class TestDefaultPipeline:
    def test_pass_order(self):
        assert Pipeline.default().pass_names() == [
            "select",
            "schedule",
            "bind",
            "finalize",
            "analyze",
        ]

    def test_engine_task_matches_direct_engine_call(self, hal, library):
        from repro.scheduling.constraints import SynthesisConstraints
        from repro.synthesis.engine import PowerConstrainedSynthesizer

        direct = PowerConstrainedSynthesizer(
            library, SynthesisConstraints.of(17, 12.0)
        ).synthesize(hal)
        task = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        via_pipeline = Pipeline.default().run(task)
        assert via_pipeline.total_area == direct.total_area
        assert via_pipeline.peak_power == direct.peak_power
        assert via_pipeline.latency == direct.latency

    def test_result_metadata_records_strategies(self):
        task = SynthesisTask(graph="hal", latency=17, power_budget=12.0, label="meta")
        result = Pipeline.default().run(task)
        assert result.metadata["scheduler"] == "engine"
        assert result.metadata["label"] == "meta"
        assert "peak_power" in result.metadata["metrics"]
        assert "energy" in result.metadata["metrics"]

    def test_explicit_objects_bypass_resolution(self, hal, library):
        task = SynthesisTask(graph="ignored-name", latency=17, power_budget=12.0)
        result = Pipeline.default().run(task, cdfg=hal, library=library)
        assert result.schedule.cdfg.name == "hal"


class TestStrategyMatrix:
    @pytest.mark.parametrize("scheduler", ["asap", "alap", "force_directed", "list"])
    def test_classical_schedulers_with_greedy_binder(self, scheduler):
        task = SynthesisTask(graph="hal", latency=20, scheduler=scheduler, verify=False)
        result = Pipeline.default().run(task)
        assert result.schedule.respects_precedence()
        assert result.datapath.check_no_conflicts() == []
        assert result.total_area > 0

    @pytest.mark.parametrize("scheduler", ["pasap", "palap", "two_step"])
    def test_power_aware_schedulers_respect_budget(self, scheduler):
        task = SynthesisTask(
            graph="hal", latency=25, power_budget=15.0, scheduler=scheduler
        )
        result = Pipeline.default().run(task)
        assert result.peak_power <= 15.0 + 1e-9

    def test_exact_scheduler_on_small_graph(self, diamond, library):
        task = SynthesisTask.of(
            diamond, library=library, latency=15, power_budget=20.0, scheduler="exact"
        )
        result = Pipeline.default().run(task)
        assert result.peak_power <= 20.0 + 1e-9
        assert result.latency <= 15

    def test_greedy_binder_shares_instances(self):
        shared = Pipeline.default().run(
            SynthesisTask(graph="hal", latency=20, scheduler="alap", verify=False)
        )
        exclusive = Pipeline.default().run(
            SynthesisTask(
                graph="hal", latency=20, scheduler="alap", binder="naive", verify=False
            )
        )
        assert shared.datapath.instance_count() < exclusive.datapath.instance_count()
        assert shared.total_area < exclusive.total_area

    def test_latency_requiring_scheduler_without_latency(self):
        task = SynthesisTask(graph="hal", scheduler="alap")
        with pytest.raises(TaskError):
            Pipeline.default().run(task)

    def test_verify_catches_budget_violation(self):
        # ASAP ignores the power budget entirely; verification must flag it.
        task = SynthesisTask(
            graph="hal", latency=20, power_budget=5.0, scheduler="asap"
        )
        from repro.scheduling.schedule import ScheduleError

        with pytest.raises(ScheduleError):
            Pipeline.default().run(task)

    def test_unknown_engine_option_rejected(self):
        task = SynthesisTask(
            graph="hal", latency=17, options={"not_an_option": True}
        )
        with pytest.raises(TaskError) as excinfo:
            Pipeline.default().run(task)
        assert "not_an_option" in str(excinfo.value)

    def test_infeasible_engine_task_raises_synthesis_error(self):
        task = SynthesisTask(graph="hal", latency=17, power_budget=2.0)
        with pytest.raises(SynthesisError):
            Pipeline.default().run(task)


class TestComposition:
    def test_without_analyze(self):
        pipeline = Pipeline.default().without("analyze")
        task = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        result = pipeline.run(task)
        assert "metrics" not in result.metadata

    def test_replaced_pass_runs(self):
        seen = []

        def spy(ctx):
            seen.append(ctx.task.scheduler)

        pipeline = Pipeline.default().replaced("analyze", spy)
        pipeline.run(SynthesisTask(graph="hal", latency=17, power_budget=12.0))
        assert seen == ["engine"]

    def test_inserted_after(self):
        order = []

        def probe(ctx):
            order.append("probe")

        pipeline = Pipeline.default().inserted_after("schedule", "probe", probe)
        assert pipeline.pass_names() == [
            "select",
            "schedule",
            "probe",
            "bind",
            "finalize",
            "analyze",
        ]
        pipeline.run(SynthesisTask(graph="hal", latency=17, power_budget=12.0))
        assert order == ["probe"]

    def test_unknown_pass_name(self):
        with pytest.raises(KeyError):
            Pipeline.default().without("nonexistent")

    def test_editing_does_not_mutate_original(self):
        original = Pipeline.default()
        original.without("analyze")
        assert "analyze" in original.pass_names()

    def test_empty_pipeline_reports_missing_result(self):
        task = SynthesisTask(graph="hal", latency=17)
        with pytest.raises(PipelineError):
            Pipeline([]).run(task)
