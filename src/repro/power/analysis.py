"""Power-profile analysis: spikes, headroom, smoothing metrics.

These helpers quantify how "spiky" a schedule's power profile is — the
property the paper's synthesis removes — and provide the comparison
metrics used by the Figure-1 benchmark and the battery-lifetime ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .profile import PowerProfile


@dataclass(frozen=True)
class SpikeReport:
    """Summary of power-constraint violations in a profile."""

    threshold: float
    violating_cycles: tuple
    worst_cycle: Optional[int]
    worst_excess: float
    total_excess_energy: float

    @property
    def count(self) -> int:
        return len(self.violating_cycles)

    @property
    def has_spikes(self) -> bool:
        return self.count > 0


def spike_report(profile: PowerProfile, threshold: float) -> SpikeReport:
    """Locate and quantify cycles whose power exceeds ``threshold``."""
    violating = []
    worst_cycle: Optional[int] = None
    worst_excess = 0.0
    total_excess = 0.0
    for cycle, value in enumerate(profile):
        excess = value - threshold
        if excess > 1e-12:
            violating.append(cycle)
            total_excess += excess
            if excess > worst_excess:
                worst_excess = excess
                worst_cycle = cycle
    return SpikeReport(
        threshold=threshold,
        violating_cycles=tuple(violating),
        worst_cycle=worst_cycle,
        worst_excess=worst_excess,
        total_excess_energy=total_excess,
    )


def peak_power(profile: PowerProfile) -> float:
    """Largest per-cycle power (alias of :attr:`PowerProfile.peak`)."""
    return profile.peak


def power_variance(profile: PowerProfile) -> float:
    """Variance of the per-cycle power — a flatness measure."""
    if len(profile) == 0:
        return 0.0
    mean = profile.average
    return sum((value - mean) ** 2 for value in profile) / len(profile)


def flatness(profile: PowerProfile) -> float:
    """Average divided by peak power, in [0, 1]; 1 means perfectly flat."""
    if profile.peak == 0:
        return 1.0
    return profile.average / profile.peak


def headroom_profile(profile: PowerProfile, budget: float) -> List[float]:
    """Remaining power budget per cycle (may be negative when violated)."""
    return [budget - value for value in profile]


def compare_profiles(reference: PowerProfile, candidate: PowerProfile) -> dict:
    """Metric dictionary comparing two profiles (used in reports).

    Keys: ``peak_reduction`` (absolute), ``peak_reduction_pct``,
    ``flatness_gain`` and ``energy_ratio`` (candidate / reference — close
    to 1.0 when the transformation only *moves* power around, as the
    paper's scheduling does).
    """
    peak_reduction = reference.peak - candidate.peak
    return {
        "peak_reduction": peak_reduction,
        "peak_reduction_pct": (100.0 * peak_reduction / reference.peak) if reference.peak else 0.0,
        "flatness_gain": flatness(candidate) - flatness(reference),
        "energy_ratio": (candidate.total_energy / reference.total_energy)
        if reference.total_energy
        else 1.0,
    }
