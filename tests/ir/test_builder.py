"""Unit tests for repro.ir.builder."""

import pytest

from repro.ir.builder import CDFGBuilder
from repro.ir.operation import OpType
from repro.ir.validate import ValidationError


class TestBuilder:
    def test_basic_expression(self):
        b = CDFGBuilder("expr")
        x = b.input("x")
        y = b.input("y")
        s = b.add("s", x, y)
        out = b.output("o", s)
        g = b.build()
        assert len(g) == 4
        assert g.operation(s).optype is OpType.ADD
        assert g.predecessors(out) == (s,)

    def test_all_typed_helpers(self):
        b = CDFGBuilder()
        x = b.input()
        y = b.input()
        ops = [
            b.add(None, x, y),
            b.sub(None, x, y),
            b.mul(None, x, y),
            b.gt(None, x, y),
            b.lt(None, x, y),
        ]
        for op in ops:
            b.output(None, op)
        g = b.build()
        types = g.type_histogram()
        assert types[OpType.ADD] == 1
        assert types[OpType.SUB] == 1
        assert types[OpType.MUL] == 1
        assert types[OpType.GT] == 1
        assert types[OpType.LT] == 1
        assert types[OpType.OUTPUT] == 5

    def test_auto_names_are_unique(self):
        b = CDFGBuilder()
        names = {b.input() for _ in range(10)}
        assert len(names) == 10

    def test_const_value_stored_in_attrs(self):
        b = CDFGBuilder()
        c = b.const("three", value=3)
        assert b.cdfg.operation(c).attrs["value"] == 3

    def test_ports_follow_argument_order(self):
        b = CDFGBuilder()
        x = b.input("x")
        y = b.input("y")
        s = b.sub("s", x, y)
        g = b.cdfg
        assert g.graph[x][s]["ports"] == [0]
        assert g.graph[y][s]["ports"] == [1]

    def test_build_validates_by_default(self):
        b = CDFGBuilder()
        x = b.input("x")
        # An output with no operand is invalid.
        b.op(OpType.OUTPUT, "bad_out", ())
        _ = x
        with pytest.raises(ValidationError):
            b.build()

    def test_build_can_skip_validation(self):
        b = CDFGBuilder()
        b.op(OpType.OUTPUT, "bad_out", ())
        g = b.build(validate=False)
        assert "bad_out" in g

    def test_generated_and_explicit_names_coexist(self):
        b = CDFGBuilder()
        b.input("in1")           # explicit name matching the generator pattern
        generated = b.input()    # must not collide
        assert generated != "in1"
