"""A small blocking client for the synthesis service (stdlib ``urllib``).

:class:`Client` speaks the JSON protocol of :mod:`repro.serve.http`:
submit task specs, poll jobs, fetch certified result records.  It is
what ``repro submit`` and the end-to-end tests use — deliberately
synchronous and dependency-free, mirroring how a script or CI job would
drive a shared synthesis server.

Quickstart::

    from repro.serve import Client, start_server

    with start_server(workers=2) as handle:
        client = Client(handle.url)
        records = client.submit_and_wait(
            {"graph": "hal", "latency": 17, "power_budget": 12.0}
        )
        print(records[0].feasible, records[0].area)
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..api.batch import TaskResult
from ..api.task import SynthesisTask


class ClientError(RuntimeError):
    """An HTTP-level failure talking to the service.

    Attributes:
        status: HTTP status code (``None`` for transport errors).
    """

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class Client:
    """Blocking JSON/HTTP client for one synthesis server.

    Args:
        base_url: Server address, e.g. ``"http://127.0.0.1:8642"`` (what
            :func:`repro.serve.start_server` returns on ``handle.url``).
        timeout: Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(
        self, path: str, *, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except ValueError:
                detail = ""
            raise ClientError(
                f"{path}: HTTP {exc.code}" + (f" — {detail}" if detail else ""),
                status=exc.code,
            ) from exc
        except urllib.error.URLError as exc:
            raise ClientError(f"{path}: {exc.reason}") from exc

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tasks: Union[SynthesisTask, Dict[str, Any], Sequence[Union[SynthesisTask, Dict[str, Any]]]],
    ) -> List[Dict[str, Any]]:
        """POST tasks; returns the accepted ``{id, key, state}`` entries.

        Accepts a single :class:`~repro.api.task.SynthesisTask` or spec
        dict, or a sequence of either.
        """
        if isinstance(tasks, (SynthesisTask, dict)):
            tasks = [tasks]
        specs = [
            task.to_dict() if isinstance(task, SynthesisTask) else dict(task)
            for task in tasks
        ]
        return self._request("/tasks", body={"tasks": specs})["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """GET one job's status record."""
        return self._request(f"/jobs/{job_id}")

    def result(self, key: str) -> TaskResult:
        """GET the certified record stored under a content address."""
        payload = self._request(f"/results/{key}")
        return TaskResult.from_dict(payload["record"])

    def healthz(self) -> Dict[str, Any]:
        """GET the liveness payload."""
        return self._request("/healthz")

    def stats(self) -> Dict[str, Any]:
        """GET the queue/cache/strategy counters."""
        return self._request("/stats")

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(
        self,
        jobs: Iterable[Dict[str, Any]],
        *,
        timeout: float = 120.0,
        poll: float = 0.05,
    ) -> List[Dict[str, Any]]:
        """Poll until every submitted job finishes; returns final job dicts.

        ``jobs`` is what :meth:`submit` returned.  Raises
        :class:`ClientError` on timeout, naming the job that was still
        unfinished.
        """
        deadline = time.monotonic() + timeout
        final: List[Dict[str, Any]] = []
        for entry in jobs:
            job_id = entry["id"]
            while True:
                state = self.job(job_id)
                if state["state"] in ("done", "failed"):
                    final.append(state)
                    break
                if time.monotonic() > deadline:
                    raise ClientError(
                        f"timed out waiting for job {job_id} "
                        f"(state {state['state']!r})"
                    )
                time.sleep(poll)
        return final

    @staticmethod
    def records_from_states(
        states: Iterable[Dict[str, Any]],
    ) -> List[TaskResult]:
        """Reconstruct one :class:`TaskResult` per final job-state dict.

        ``done`` jobs yield their stored record; ``failed`` jobs (e.g. a
        certificate rejection) become infeasible records carrying the
        error, mirroring how :func:`~repro.api.batch.run_batch` reports
        failures as data.  Shared by :meth:`submit_and_wait` and the
        ``repro submit --wait`` CLI so the two can never diverge.
        """
        records: List[TaskResult] = []
        for state in states:
            if state["state"] == "done" and state.get("record"):
                records.append(TaskResult.from_dict(state["record"]))
            else:
                records.append(
                    TaskResult(
                        task=SynthesisTask.from_dict(state["task"]),
                        feasible=False,
                        error=state.get("error"),
                        error_type=state.get("error_type"),
                    )
                )
        return records

    def submit_and_wait(
        self,
        tasks: Union[SynthesisTask, Dict[str, Any], Sequence[Union[SynthesisTask, Dict[str, Any]]]],
        *,
        timeout: float = 120.0,
    ) -> List[TaskResult]:
        """Submit, wait, and reconstruct one :class:`TaskResult` per task."""
        accepted = self.submit(tasks)
        return self.records_from_states(self.wait(accepted, timeout=timeout))
