"""Independent end-to-end verification of synthesis results.

This package is the trust anchor of the repository: it re-validates any
:class:`~repro.synthesis.result.SynthesisResult` **from scratch**,
without reusing the bookkeeping of the algorithm that produced it, and it
cross-examines every registered scheduler/binder strategy on the same
task (differential testing in the spirit of the paper's cross-benchmark
evaluation).

* :func:`check_certificate` — re-derive every contract of a result
  (precedence, latency, power profile, FU sharing, binding/module
  consistency, register lifetimes, interconnect and area accounting) and
  return a structured :class:`CertificateReport` of
  :class:`Violation` records rather than a bare bool.
* :func:`cross_check` — run one task through every scheduler × binder
  pair from the registries, certify every feasible result and flag
  soundness disagreements (a heuristic claiming feasible where the exact
  scheduler proved infeasibility).
* :func:`run_fuzz` / :class:`FuzzConfig` — seeded differential fuzzing
  across the generator families in :mod:`repro.suite.generators`; what
  the ``repro fuzz`` CLI subcommand drives.
"""

from .certificate import (
    CertificateError,
    CertificateReport,
    Violation,
    check_certificate,
)
from .differential import (
    CrossCheckReport,
    StrategyOutcome,
    cross_check,
    strategy_pairs,
)
from .fuzz import FuzzCase, FuzzConfig, FuzzReport, fuzz_case_tasks, run_fuzz

__all__ = [
    "FuzzCase",
    "CertificateError",
    "CertificateReport",
    "Violation",
    "check_certificate",
    "CrossCheckReport",
    "StrategyOutcome",
    "cross_check",
    "strategy_pairs",
    "FuzzConfig",
    "FuzzReport",
    "fuzz_case_tasks",
    "run_fuzz",
]
