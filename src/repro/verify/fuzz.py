"""Seeded differential fuzzing across the scenario families.

The fuzzer draws, for every (family, seed) pair, one deterministic task:
a seeded graph from :data:`repro.suite.generators.FAMILIES`, a latency
bound placed a few cycles above the graph's min-power critical path and a
power budget sampled around the analytic feasibility floor — sometimes
*below* it, so typed infeasibility paths are exercised too, and sometimes
absent entirely.  Each task then goes through
:func:`~repro.verify.differential.cross_check`: every scheduler × binder
pair from the registries runs it, every feasible result is certified
from scratch and the exact scheduler's verdict cross-examines the
heuristics.

Everything derives from the seed alone, so a failing case is reproduced
by its ``(family, seed)`` coordinates; the :class:`FuzzReport`
serializes them together with the full task spec.  An optional
:class:`~repro.explore.cache.ResultCache` (the CLI's ``--cache-dir`` /
``--resume``) skips (task, strategy) points certified by an earlier run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..api.task import SynthesisTask
from ..binding.register import register_lower_bound
from ..ir.analysis import critical_path_length
from ..library.library import default_library
from ..library.selection import (
    MinPowerSelection,
    selection_delays,
    selection_powers,
)
from ..registries import SCHEDULERS
from ..scheduling.alap import alap_schedule
from ..scheduling.asap import asap_schedule
from ..scheduling.constraints import minimum_feasible_power
from ..suite.generators import FAMILIES, family_cdfg
from .differential import (
    COMPLETE_SCHEDULERS,
    META_SCHEDULERS,
    CrossCheckReport,
    cross_check,
)


@dataclass(frozen=True)
class FuzzConfig:
    """What to fuzz and how hard.

    Attributes:
        families: Generator family names (empty = every registered one).
        seeds: Number of seeds per family.
        base_seed: First seed (cases cover ``base_seed .. base_seed+seeds-1``).
        schedulers: Scheduler names to include (empty = all registered).
        binders: Binder names to include (empty = all registered).
        max_slack: Largest latency slack above the critical path drawn.
        unbounded_fraction: Share of cases run without a power budget.
        tight_fraction: Share of cases probing *below* the analytic
            feasibility floor (exercising the typed-infeasibility paths).
        register_fraction: Share of cases that additionally carry a
            register budget, sampled around the best register count the
            ASAP/ALAP schedules achieve — sometimes one below it, so the
            register-infeasibility path is exercised too.  Only the
            register-aware schedulers produce verdicts on these cases;
            everyone else must report a typed
            ``UnsupportedConstraintError``.
        portfolio_fraction: Share of cases that additionally race the
            ``portfolio`` meta-strategy (default contender subset)
            alongside the standalone pairs, so
            :func:`~repro.verify.differential.cross_check` can hold its
            verdict to the portfolio-agreement invariant.  Below-floor
            cases never race (the portfolio's complete contenders would
            re-prove a known infeasibility at exploding cost).
    """

    families: Tuple[str, ...] = ()
    seeds: int = 10
    base_seed: int = 0
    schedulers: Tuple[str, ...] = ()
    binders: Tuple[str, ...] = ()
    max_slack: int = 6
    unbounded_fraction: float = 0.2
    tight_fraction: float = 0.25
    register_fraction: float = 0.25
    portfolio_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("need at least one seed per family")
        if self.max_slack < 0:
            raise ValueError("max_slack must be non-negative")
        if not 0.0 <= self.unbounded_fraction + self.tight_fraction <= 1.0:
            raise ValueError("case-mix fractions must sum to within [0, 1]")
        if not 0.0 <= self.register_fraction <= 1.0:
            raise ValueError("register_fraction must be within [0, 1]")
        if not 0.0 <= self.portfolio_fraction <= 1.0:
            raise ValueError("portfolio_fraction must be within [0, 1]")

    def family_names(self) -> List[str]:
        return list(self.families) if self.families else FAMILIES.names()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "families": self.family_names(),
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "schedulers": list(self.schedulers),
            "binders": list(self.binders),
            "max_slack": self.max_slack,
            "unbounded_fraction": self.unbounded_fraction,
            "tight_fraction": self.tight_fraction,
            "register_fraction": self.register_fraction,
            "portfolio_fraction": self.portfolio_fraction,
        }


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic fuzz case.

    Attributes:
        family: Generator family the graph came from.
        seed: The seed that reproduces graph, latency and budget.
        task: The task (graph inlined, so it is cacheable and shippable);
            strategies are substituted later by
            :func:`~repro.verify.differential.cross_check`.
        power_floor: The analytic feasibility floor for the task's
            min-power selection (max of energy/T and the largest single
            per-cycle power).  A budget below it is provably infeasible.
        portfolio: Whether this case also races the ``portfolio``
            meta-strategy (a separate seeded draw; never on below-floor
            cases).
    """

    family: str
    seed: int
    task: SynthesisTask
    power_floor: float
    portfolio: bool = False

    @property
    def below_floor(self) -> bool:
        """True when the budget is analytically infeasible."""
        budget = self.task.power_budget
        return budget is not None and budget < self.power_floor - 1e-9


def fuzz_case_tasks(config: FuzzConfig) -> Iterator[FuzzCase]:
    """Yield the deterministic :class:`FuzzCase` list of a config."""
    library = default_library()
    for family in config.family_names():
        FAMILIES.get(family)  # fail fast on unknown names
        for seed in range(config.base_seed, config.base_seed + config.seeds):
            cdfg = family_cdfg(family, seed)
            selection = MinPowerSelection().select(cdfg, library)
            delays = selection_delays(selection, cdfg)
            powers = selection_powers(selection, cdfg)
            rng = random.Random(f"fuzz:{family}:{seed}")
            latency = critical_path_length(cdfg, delays) + rng.randint(
                0, config.max_slack
            )
            floor = minimum_feasible_power(powers, delays, latency)
            draw = rng.random()
            if draw < config.unbounded_fraction:
                budget: Optional[float] = None
            elif draw < config.unbounded_fraction + config.tight_fraction:
                budget = round(floor * rng.uniform(0.5, 0.95), 3)
            else:
                budget = round(floor * rng.uniform(1.0, 3.0), 3)
            register_budget = _sample_register_budget(
                config, family, seed, cdfg, delays, powers, latency
            )
            # Separate stream, like the register draw, so enabling the
            # portfolio mix never perturbs existing (latency, power)
            # coordinates.  Below-floor cases never race: the portfolio's
            # complete contenders would re-prove a known infeasibility.
            below_floor = budget is not None and budget < floor - 1e-9
            portfolio = (
                not below_floor
                and random.Random(f"fuzz-portfolio:{family}:{seed}").random()
                < config.portfolio_fraction
            )
            task = SynthesisTask.of(
                cdfg,
                latency=latency,
                power_budget=budget,
                register_budget=register_budget,
                label=f"{family}/s{seed}",
            )
            yield FuzzCase(
                family=family,
                seed=seed,
                task=task,
                power_floor=floor,
                portfolio=portfolio,
            )


def _sample_register_budget(
    config: FuzzConfig,
    family: str,
    seed: int,
    cdfg,
    delays,
    powers,
    latency: int,
) -> Optional[int]:
    """Draw a register budget for a fraction of the cases (else ``None``).

    A separate RNG stream keeps the (latency, power) draws of existing
    seeds stable.  The reference point is the better of the ASAP/ALAP
    register counts at this latency — an upper bound on the true
    schedulable floor — and the draw lands mostly at or above it (cheap
    feasible ILP solves) with an occasional ``reference - 1`` probe that
    may cross into provable infeasibility.
    """
    rng = random.Random(f"fuzz-reg:{family}:{seed}")
    if rng.random() >= config.register_fraction:
        return None
    reference = min(
        register_lower_bound(asap_schedule(cdfg, delays, powers)),
        register_lower_bound(alap_schedule(cdfg, delays, powers, latency)),
    )
    return max(1, reference + rng.choice((-1, 0, 0, 1, 2)))


@dataclass
class FuzzReport:
    """Aggregated outcome of one fuzzing run (JSON-serializable)."""

    config: FuzzConfig
    cases: List[Tuple[str, int, CrossCheckReport]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        return all(report.ok for _, _, report in self.cases)

    @property
    def runs(self) -> int:
        return sum(len(report.outcomes) for _, _, report in self.cases)

    @property
    def feasible_runs(self) -> int:
        return sum(
            1
            for _, _, report in self.cases
            for outcome in report.outcomes
            if outcome.feasible
        )

    @property
    def portfolio_runs(self) -> int:
        return sum(
            1
            for _, _, report in self.cases
            for outcome in report.outcomes
            if outcome.scheduler in META_SCHEDULERS
        )

    @property
    def cached_runs(self) -> int:
        return sum(
            1
            for _, _, report in self.cases
            for outcome in report.outcomes
            if outcome.cached
        )

    @property
    def disagreements(self) -> int:
        return sum(1 for _, _, report in self.cases if report.disagreement)

    def violations(self) -> List[Dict[str, Any]]:
        """Every violation found, tagged with its (family, seed) case."""
        found: List[Dict[str, Any]] = []
        for family, seed, report in self.cases:
            for violation in report.violations:
                entry = violation.to_dict()
                entry["family"] = family
                entry["seed"] = seed
                entry["task"] = report.task.to_dict()
                found.append(entry)
        return found

    def family_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-family counters (cases, runs, feasible, violations)."""
        summary: Dict[str, Dict[str, int]] = {}
        for family, _, report in self.cases:
            row = summary.setdefault(
                family, {"cases": 0, "runs": 0, "feasible": 0, "violations": 0}
            )
            row["cases"] += 1
            row["runs"] += len(report.outcomes)
            row["feasible"] += sum(1 for o in report.outcomes if o.feasible)
            row["violations"] += len(report.violations)
        return summary

    # ------------------------------------------------------------------ #
    # Presentation / serialization
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        lines = [
            f"fuzz: {len(self.cases)} case(s), {self.runs} strategy run(s), "
            f"{self.feasible_runs} feasible, {self.disagreements} feasibility "
            f"split(s), {self.portfolio_runs} portfolio race(s), "
            f"{self.cached_runs} resumed from cache"
        ]
        for family, row in sorted(self.family_summary().items()):
            lines.append(
                f"  {family}: {row['cases']} case(s), {row['runs']} run(s), "
                f"{row['feasible']} feasible, {row['violations']} violation(s)"
            )
        violations = self.violations()
        if violations:
            lines.append(f"{len(violations)} violation(s):")
            for entry in violations:
                lines.append(
                    f"  {entry['family']}/s{entry['seed']} "
                    f"[{entry['kind']}] {entry['subject']}: {entry['message']}"
                )
        else:
            lines.append("no violations")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "ok": self.ok,
            "cases": len(self.cases),
            "runs": self.runs,
            "feasible": self.feasible_runs,
            "cached": self.cached_runs,
            "portfolio_runs": self.portfolio_runs,
            "disagreements": self.disagreements,
            "families": self.family_summary(),
            "violations": self.violations(),
        }


def run_fuzz(
    config: Optional[FuzzConfig] = None,
    *,
    cache=None,
    progress=None,
) -> FuzzReport:
    """Differentially fuzz every configured (family, seed) case.

    Args:
        config: What to fuzz; defaults to ``FuzzConfig()`` (all families,
            all strategies, 10 seeds).
        cache: Optional :class:`~repro.explore.cache.ResultCache` shared
            with previous runs; certified/infeasible points resume as
            scalar hits (see :func:`~repro.verify.differential.cross_check`).
        progress: Optional callable ``(family, seed, report)`` invoked
            after each case (the CLI's live line).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is True when no case
        produced a certificate or soundness violation.
    """
    config = config or FuzzConfig()
    report = FuzzReport(config=config)
    schedulers = list(config.schedulers) or None
    binders = list(config.binders) or None
    for case in fuzz_case_tasks(config):
        case_schedulers = schedulers
        if case.below_floor:
            # The budget is below the analytic feasibility floor, so
            # infeasibility is already proven; making the exhaustive
            # exact scheduler re-prove it by search is the one
            # combination whose cost explodes (seconds per case) while
            # adding no differential signal.  The heuristics still run
            # and must all report typed infeasibility.  (The explicit
            # list would also re-admit the portfolio meta-strategy that
            # strategy_pairs excludes by default — filter it here too.)
            case_schedulers = [
                name
                for name in (schedulers or SCHEDULERS.names())
                if name not in COMPLETE_SCHEDULERS and name not in META_SCHEDULERS
            ]
        elif case.portfolio and schedulers is None:
            # Race the portfolio alongside the standalone pairs: its
            # verdict becomes a differential-oracle participant that
            # must agree with its own winning strategy.  An explicitly
            # configured scheduler list is honoured as-is — listing
            # "portfolio" there races it on every case instead.
            case_schedulers = [
                name
                for name in SCHEDULERS.names()
                if name not in META_SCHEDULERS
            ] + ["portfolio"]
        outcome = cross_check(case.task, case_schedulers, binders, cache=cache)
        report.cases.append((case.family, case.seed, outcome))
        if progress is not None:
            progress(case.family, case.seed, outcome)
    return report
