"""Graph transformations on CDFGs.

The synthesis flow occasionally needs to clean up or restructure graphs
before scheduling:

* :func:`remove_dead_operations` — drop arithmetic operations whose result
  never reaches an output (dead code in the behavioural description),
* :func:`strip_virtual_operations` — remove constants/no-ops and reconnect
  around them (schedulers only care about real operations),
* :func:`merge_chains` / :func:`relabel` — structural utilities used by the
  random benchmark generator and the tests.

All transforms return *new* graphs; inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

import networkx as nx

from .cdfg import CDFG
from .operation import Operation, OpType


def remove_dead_operations(cdfg: CDFG) -> CDFG:
    """Remove arithmetic operations that cannot reach any output.

    Input and output operations are always kept; virtual operations are
    kept only if something reachable consumes them.
    """
    outputs = set(cdfg.operations_of_type(OpType.OUTPUT))
    if not outputs:
        # Without outputs everything is considered live (common for
        # synthetic test graphs).
        return cdfg.copy()

    live: Set[str] = set(outputs)
    for out in outputs:
        live |= nx.ancestors(cdfg.graph, out)
    live |= set(cdfg.operations_of_type(OpType.INPUT))

    return cdfg.subgraph(live, name=cdfg.name)


def strip_virtual_operations(cdfg: CDFG) -> CDFG:
    """Remove CONST/NOP nodes, reconnecting predecessors to successors.

    Constants have no predecessors so removal simply drops their edges;
    NOP nodes are bypassed (each predecessor is connected to each
    successor).
    """
    result = CDFG(cdfg.name)
    keep = [n for n in cdfg.operation_names() if not cdfg.operation(n).is_virtual]
    for name in keep:
        result.add_operation(cdfg.operation(name))

    # Bypass virtual nodes: find, for every kept node, its kept ancestors
    # through chains of virtual nodes.
    def real_producers(node: str) -> Set[str]:
        producers: Set[str] = set()
        stack = list(cdfg.predecessors(node))
        seen: Set[str] = set()
        while stack:
            pred = stack.pop()
            if pred in seen:
                continue
            seen.add(pred)
            if cdfg.operation(pred).is_virtual:
                stack.extend(cdfg.predecessors(pred))
            else:
                producers.add(pred)
        return producers

    for name in keep:
        for producer in sorted(real_producers(name)):
            if producer != name:
                result.add_edge(producer, name)
    return result


def relabel(cdfg: CDFG, mapper: Callable[[str], str]) -> CDFG:
    """Return a copy with every operation renamed through ``mapper``.

    Raises:
        ValueError: if the mapping is not injective over the graph's names.
    """
    new_names: Dict[str, str] = {n: mapper(n) for n in cdfg.operation_names()}
    if len(set(new_names.values())) != len(new_names):
        raise ValueError("relabel mapper is not injective")
    result = CDFG(cdfg.name)
    for name in cdfg.operation_names():
        op = cdfg.operation(name)
        result.add_operation(Operation(new_names[name], op.optype, op.label, op.attrs))
    for src, dst in cdfg.edges():
        for _ in range(cdfg.edge_multiplicity(src, dst)):
            result.add_edge(new_names[src], new_names[dst])
    return result


def merge_graphs(first: CDFG, second: CDFG, name: str = "merged") -> CDFG:
    """Disjoint union of two CDFGs (operation names must not collide)."""
    overlap = set(first.operation_names()) & set(second.operation_names())
    if overlap:
        raise ValueError(f"operation names collide in merge: {sorted(overlap)}")
    result = CDFG(name)
    for graph in (first, second):
        for op in graph.operations():
            result.add_operation(op)
        for src, dst in graph.edges():
            for _ in range(graph.edge_multiplicity(src, dst)):
                result.add_edge(src, dst)
    return result


def io_wrapped(cdfg: CDFG, name: str | None = None) -> CDFG:
    """Ensure every source is fed by an INPUT and every sink feeds an OUTPUT.

    Benchmark graphs written only with arithmetic nodes can be wrapped so
    the I/O power contribution from the paper's library (``input``/
    ``output`` modules in Table 1) is accounted for.
    """
    result = cdfg.copy(name or cdfg.name)
    for source in list(result.sources()):
        op = result.operation(source)
        if op.optype in (OpType.INPUT, OpType.CONST):
            continue
        feeder = f"in_{source}"
        if feeder in result:
            continue
        result.add_operation(Operation(feeder, OpType.INPUT))
        result.add_edge(feeder, source)
    for sink in list(result.sinks()):
        op = result.operation(sink)
        if op.optype is OpType.OUTPUT:
            continue
        consumer = f"out_{sink}"
        if consumer in result:
            continue
        result.add_operation(Operation(consumer, OpType.OUTPUT))
        result.add_edge(sink, consumer)
    return result
