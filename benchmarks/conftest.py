"""Shared fixtures for the benchmark harness.

Each benchmark file reproduces one artifact of the paper's evaluation
(Table 1, Figure 1, Figure 2) or one of the ablation studies described in
DESIGN.md.  The pytest-benchmark plugin times the reproduction while the
assertions check the qualitative shape the paper reports; the printed
tables/series are the regenerated artifact.
"""

from __future__ import annotations

import pytest

from repro.library import default_library


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="Run the Figure-2 sweep with a finer power grid (slower).",
    )


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def sweep_steps(request):
    return 10 if request.config.getoption("--full-sweep") else 6
