"""Parallel batch execution of synthesis tasks.

``run_batch`` fans a list of :class:`~repro.api.task.SynthesisTask` specs
out over a :class:`concurrent.futures.ProcessPoolExecutor` and returns a
structured :class:`TaskResult` per task, in input order.  Because tasks
are plain data, shipping them to workers is trivial; workers return the
scalar metrics (area, peak power, latency, …) so the parent never has to
unpickle a full datapath.  With ``jobs <= 1`` everything runs in-process
and the full :class:`~repro.synthesis.result.SynthesisResult` objects are
kept on the records.

Infeasible constraint combinations are *data*, not errors: they come back
as ``feasible=False`` records carrying the failure message, which is what
lets a sweep probe below the feasibility frontier without try/except at
every call site.  Genuine programming errors still propagate.

:class:`Sweep` is the declarative form of the most common batch — one
benchmark, one latency bound, many power budgets (one Figure-2 curve).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..scheduling.constraints import ConstraintError
from ..scheduling.exact import ExactSchedulerError
from ..scheduling.list_scheduler import ResourceInfeasibleError
from ..scheduling.pasap import PowerInfeasibleError
from ..scheduling.schedule import ScheduleError
from ..synthesis.result import SynthesisError, SynthesisResult
from .pipeline import Pipeline
from .task import PORTFOLIO_SCHEDULER, SynthesisTask, TaskError

#: Exception types recorded as an infeasible task rather than raised.
INFEASIBLE_ERRORS = (
    SynthesisError,
    ScheduleError,
    ResourceInfeasibleError,
    PowerInfeasibleError,
    ExactSchedulerError,
    ConstraintError,
)


@dataclass
class TaskResult:
    """Structured outcome of one task in a batch.

    Attributes:
        task: The spec that was run.
        feasible: Whether synthesis succeeded under the task's constraints.
        area: Total datapath area (``None`` when infeasible).
        fu_area: Functional-unit area only (``None`` when infeasible).
        peak_power: Peak per-cycle power of the result.
        latency: Cycles used by the result.
        registers: Register count of the result's datapath allocation
            (``None`` when infeasible or unallocated).
        backtracks: Engine backtrack-and-lock invocations.
        error: Failure message for infeasible tasks.
        error_type: Exception class name for infeasible tasks.
        elapsed: Wall-clock seconds the task took.
        cached: True when this record was served from a
            :class:`~repro.explore.cache.ResultCache` instead of being
            synthesized (``elapsed`` then reports the *original* run).
        winner: For ``portfolio`` records only: the pair label of the
            concrete strategy whose result this is (``"engine"``,
            ``"ilp+greedy"``, …).  ``None`` everywhere else.
        result: The full result object — only populated for in-process
            (sequential) execution; worker processes and the result cache
            return scalars only.
    """

    task: SynthesisTask
    feasible: bool
    area: Optional[float] = None
    fu_area: Optional[float] = None
    peak_power: Optional[float] = None
    latency: Optional[int] = None
    registers: Optional[int] = None
    backtracks: int = 0
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    winner: Optional[str] = None
    result: Optional[SynthesisResult] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (drops the heavy ``result`` object)."""
        payload = {
            "task": self.task.to_dict(),
            "feasible": self.feasible,
            "area": self.area,
            "fu_area": self.fu_area,
            "peak_power": self.peak_power,
            "latency": self.latency,
            "registers": self.registers,
            "backtracks": self.backtracks,
            "error": self.error,
            "error_type": self.error_type,
            "elapsed": self.elapsed,
            "cached": self.cached,
        }
        # only portfolio records carry a winner; omitting the key keeps
        # every pre-portfolio record byte-identical on disk
        if self.winner is not None:
            payload["winner"] = self.winner
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskResult":
        data = dict(data)
        task = SynthesisTask.from_dict(data.pop("task"))
        return cls(task=task, **data)


@dataclass
class BatchSummary:
    """Aggregate counters for one batch of task records.

    Built by :meth:`from_records` from the same per-record flags the CLI
    table shows, so every consumer — ``repro batch``, the serving layer's
    ``/stats`` endpoint, a notebook — reports identical numbers for
    identical records.

    Attributes:
        total: Records in the batch.
        feasible: Records whose constraints were satisfiable.
        infeasible: Records that failed their constraints (``total -
            feasible``).
        cache_hits: Records served from a
            :class:`~repro.explore.cache.ResultCache` (``cached=True``)
            instead of being synthesized.
        computed: Records synthesized in this run (``total - cache_hits``).
        certificate_errors: Infeasible records whose failure was a
            structural :class:`~repro.verify.CertificateError` — a result
            the pipeline produced but the independent checker rejected.
            These are bugs, not constraint data; ``repro batch`` exits
            with the violations code when any are present.
        elapsed: Wall-clock seconds of the whole batch call (``0.0`` when
            the summary was built from records alone).
    """

    total: int = 0
    feasible: int = 0
    infeasible: int = 0
    cache_hits: int = 0
    computed: int = 0
    certificate_errors: int = 0
    elapsed: float = 0.0

    @classmethod
    def from_records(
        cls, records: Sequence["TaskResult"], *, elapsed: float = 0.0
    ) -> "BatchSummary":
        """Count one list of records into a summary."""
        feasible = sum(1 for record in records if record.feasible)
        hits = sum(1 for record in records if record.cached)
        return cls(
            total=len(records),
            feasible=feasible,
            infeasible=len(records) - feasible,
            cache_hits=hits,
            computed=len(records) - hits,
            certificate_errors=sum(
                1 for record in records if record.error_type == "CertificateError"
            ),
            elapsed=elapsed,
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of records served from the cache (0.0 for an empty batch)."""
        return self.cache_hits / self.total if self.total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (what ``/stats`` and ``repro batch -o`` embed)."""
        return {
            "total": self.total,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "certificate_errors": self.certificate_errors,
            "hit_rate": self.hit_rate,
            "elapsed": self.elapsed,
        }


class BatchResults(List[TaskResult]):
    """The list of records :func:`run_batch` returns, plus its summary.

    A plain ``list`` of :class:`TaskResult` in every existing sense
    (indexing, iteration, ``len``), with a :attr:`summary` carrying the
    batch-level counters so callers stop re-deriving hit/feasibility
    counts with ad-hoc comprehensions.
    """

    def __init__(self, records: Iterable[TaskResult] = (), *, elapsed: float = 0.0):
        super().__init__(records)
        self.summary = BatchSummary.from_records(self, elapsed=elapsed)


def run_task(
    task: SynthesisTask,
    *,
    keep_result: bool = True,
    pipeline: Optional[Pipeline] = None,
    cdfg=None,
    library=None,
    cache=None,
    verify: bool = False,
) -> TaskResult:
    """Run one task; return a record instead of raising on infeasibility.

    ``cdfg`` / ``library`` are forwarded to :meth:`Pipeline.run` so
    in-process callers holding live objects skip the task's own
    resolution (and any inline-dict round-trip).

    ``cache`` is a :class:`~repro.explore.cache.ResultCache`: a hit
    returns the stored record (``cached=True``, scalar metrics only)
    without synthesizing; a miss synthesizes and stores the outcome —
    feasible or not.  The cache is ignored alongside a custom
    ``pipeline``, whose ad-hoc passes are invisible to the content
    address and would poison shared entries.  It is likewise ignored
    whenever a live ``cdfg`` / ``library`` override accompanies the
    task: the pipeline would run on the override while the record filed
    under the *task spec's* address, poisoning it for every honest
    lookup.  Callers holding live objects cache through an inline task
    instead (what :func:`repro.synthesis.explore.probe_point` does).

    A ``scheduler="portfolio"`` task dispatches to
    :func:`repro.portfolio.run_portfolio` after the cache check: the
    contender subset races, each contender individually certificate-gated
    (``verify`` adds nothing — the gate always runs), and the winning
    record comes back with its ``winner`` pair label set.  Custom
    pipelines and live ``cdfg``/``library`` overrides are rejected for
    portfolio tasks.  Non-verdict outcomes (deadline expiry, crash-tainted
    all-infeasible races) are returned but never cached.

    ``verify=True`` additionally runs the certificate checker
    (:func:`repro.verify.check_certificate`) on a feasible result and
    **raises** :class:`~repro.verify.CertificateError` on violations —
    the uncertified result is neither recorded nor cached.  The task's
    own ``verify`` field runs the *same* checker inside the pipeline but
    converts failures into infeasible records; this flag therefore only
    adds behaviour for tasks with ``verify=False`` (or custom pipelines
    without the finalize gate), where it is the caller-side assertion
    that feasibility claims must be certified, loudly.  Cache hits carry
    scalar metrics only and cannot be re-certified; they are returned
    as-is.
    """
    use_cache = (
        cache is not None and pipeline is None and cdfg is None and library is None
    )
    if use_cache:
        hit = cache.get(task)
        if hit is not None:
            return hit
    if task.scheduler == PORTFOLIO_SCHEDULER:
        if pipeline is not None or cdfg is not None or library is not None:
            raise TaskError(
                "a portfolio task cannot take a custom pipeline or live "
                "cdfg/library overrides; contenders resolve the task spec "
                "themselves"
            )
        from ..portfolio.runner import run_portfolio  # avoid a cycle

        outcome = run_portfolio(task, cache=cache)
        # deadline expiries and crash-tainted infeasibles are not verdicts
        # on the spec; caching them would poison honest lookups
        if use_cache and outcome.cacheable:
            cache.put(task, outcome.record)
        return outcome.record
    pipeline = pipeline or Pipeline.default()
    started = time.perf_counter()
    try:
        result = pipeline.run(task, cdfg=cdfg, library=library)
    except INFEASIBLE_ERRORS as exc:
        record = TaskResult(
            task=task,
            feasible=False,
            error=str(exc),
            error_type=type(exc).__name__,
            elapsed=time.perf_counter() - started,
        )
    else:
        if verify:
            from ..verify.certificate import check_certificate  # avoid a cycle

            check_certificate(result).raise_if_violations()
        record = TaskResult(
            task=task,
            feasible=True,
            area=result.total_area,
            fu_area=result.fu_area,
            peak_power=result.peak_power,
            latency=result.latency,
            registers=(
                result.datapath.registers.count
                if result.datapath.registers is not None
                else None
            ),
            backtracks=result.backtracks,
            elapsed=time.perf_counter() - started,
            result=result if keep_result else None,
        )
    if use_cache:
        cache.put(task, record)
    return record


def _run_task_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: task dict in, record dict out (both picklable).

    When the payload names a ``cache_dir``, the worker opens the shared
    on-disk cache itself — each completed point lands on disk (and in the
    journal) the moment it finishes, so a killed parallel grid loses at
    most the points that were in flight.
    """
    task = SynthesisTask.from_dict(payload["task"])
    cache = None
    if payload.get("cache_dir"):
        from ..explore.cache import ResultCache  # local import to avoid a cycle

        cache = ResultCache(
            payload["cache_dir"],
            read=payload.get("cache_read", True),
            backend=payload.get("cache_backend"),
        )
    return run_task(task, keep_result=False, cache=cache).to_dict()


def run_batch(
    tasks: Iterable[SynthesisTask],
    *,
    jobs: Optional[int] = None,
    keep_results: Optional[bool] = None,
    pipeline: Optional[Pipeline] = None,
    cache=None,
) -> BatchResults:
    """Run many tasks, optionally in parallel; results in input order.

    Args:
        tasks: Task specs to run.
        jobs: Worker processes.  ``None`` or ``<= 1`` runs sequentially
            in-process (full result objects kept by default).
        keep_results: Keep full :class:`SynthesisResult` objects on the
            records.  Defaults to True sequentially; forced off for
            ``jobs > 1`` (workers return scalars only).  Cache hits carry
            scalars only either way.
        pipeline: Custom pipeline — sequential execution only, since a
            pipeline with ad-hoc passes cannot be shipped to workers.
            Disables the cache (see :func:`run_task`).
        cache: A :class:`~repro.explore.cache.ResultCache` shared by every
            task.  In parallel mode the parent answers what it can before
            spawning workers, ships only the misses, and the workers write
            each computed point straight to the shared directory — a fully
            warm batch never starts the process pool at all.

    Returns:
        A :class:`BatchResults` list — one :class:`TaskResult` per task,
        in the same order as ``tasks``, with the batch-level
        :class:`BatchSummary` (feasibility, cache hit/miss and
        certificate-error counts) on ``.summary``.
    """
    started = time.perf_counter()
    task_list = list(tasks)
    workers = 1 if jobs is None else int(jobs)
    if workers <= 1 or len(task_list) <= 1:
        keep = True if keep_results is None else keep_results
        records = [
            run_task(t, keep_result=keep, pipeline=pipeline, cache=cache)
            for t in task_list
        ]
        return BatchResults(records, elapsed=time.perf_counter() - started)
    if pipeline is not None:
        raise ValueError(
            "a custom pipeline cannot be used with jobs > 1; "
            "run sequentially or register the custom strategies instead"
        )
    if keep_results:
        raise ValueError("keep_results=True requires sequential execution (jobs <= 1)")

    results: List[Optional[TaskResult]] = [None] * len(task_list)
    pending = list(range(len(task_list)))
    if cache is not None:
        pending = []
        for index, task in enumerate(task_list):
            hit = cache.get(task)
            if hit is not None:
                results[index] = hit
            else:
                pending.append(index)
    if pending:
        if cache is not None:
            # content-identical tasks synthesize once; the others share
            # the record (with their own task rebound, like a cache hit)
            by_key: Dict[str, List[int]] = {}
            for index in pending:
                by_key.setdefault(task_list[index].cache_key(), []).append(index)
            groups = list(by_key.values())
        else:
            groups = [[index] for index in pending]
        cache_dir = str(cache.root) if cache is not None and cache.write else None
        payloads = [
            {
                "task": task_list[group[0]].to_dict(),
                "cache_dir": cache_dir,
                "cache_read": cache.read if cache is not None else True,
                # a fresh columnar cache may have nothing on disk yet for
                # the worker to autodetect from; name the backend explicitly
                "cache_backend": getattr(cache, "backend", None),
            }
            for group in groups
        ]
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            records = list(pool.map(_run_task_payload, payloads))
        # content-duplicate tasks share the one computed record (each with
        # its own task rebound); they keep cached=False — the point was
        # computed in this run, not served from the cache
        for group, record in zip(groups, records):
            for index in group:
                result = TaskResult.from_dict(record)
                result.task = task_list[index]
                results[index] = result
    return BatchResults(
        (record for record in results if record is not None),
        elapsed=time.perf_counter() - started,
    )


@dataclass
class Sweep:
    """A declarative batch: one benchmark × one latency × many power budgets.

    ``Sweep("hal", 17, [8, 10, 12, 15]).run(jobs=4)`` is one Figure-2
    curve computed on four cores.
    """

    graph: Union[str, Dict[str, Any]]
    latency: int
    power_budgets: Sequence[float]
    library: Union[str, Dict[str, Any]] = "table1"
    register_budget: Optional[int] = None
    scheduler: str = "engine"
    binder: str = "greedy"
    selector: str = "min_power"
    options: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def tasks(self) -> List[SynthesisTask]:
        """Expand into one task per power budget (ascending)."""
        if isinstance(self.power_budgets, (str, int, float)) or not hasattr(
            self.power_budgets, "__iter__"
        ):
            raise TaskError(
                f"sweep power_budgets must be a list of numbers, got {self.power_budgets!r}"
            )
        if not self.power_budgets:
            raise TaskError("a sweep needs at least one power budget")
        return [
            SynthesisTask(
                graph=self.graph,
                latency=self.latency,
                power_budget=budget,
                register_budget=self.register_budget,
                library=self.library,
                scheduler=self.scheduler,
                binder=self.binder,
                selector=self.selector,
                options=dict(self.options),
                label=self.label,
            )
            for budget in sorted(self.power_budgets)
        ]

    def run(self, jobs: Optional[int] = None) -> List[TaskResult]:
        """Run the expanded tasks through :func:`run_batch`."""
        keep = None if (jobs is None or jobs <= 1) else False
        return run_batch(self.tasks(), jobs=jobs, keep_results=keep)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph,
            "latency": self.latency,
            "power_budgets": list(self.power_budgets),
            "library": self.library,
            "register_budget": self.register_budget,
            "scheduler": self.scheduler,
            "binder": self.binder,
            "selector": self.selector,
            "options": dict(self.options),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Sweep":
        if not isinstance(data, dict):
            raise TaskError(f"sweep spec must be an object, got {type(data).__name__}")
        valid = {
            "graph",
            "latency",
            "power_budgets",
            "library",
            "register_budget",
            "scheduler",
            "binder",
            "selector",
            "options",
            "label",
        }
        unknown = sorted(set(data) - valid)
        if unknown:
            raise TaskError(f"unknown sweep field(s) {unknown}; valid: {sorted(valid)}")
        for required in ("graph", "latency", "power_budgets"):
            if required not in data:
                raise TaskError(f"sweep spec is missing the required {required!r} field")
        return cls(**data)
