"""Load test: many clients, many jobs, two services, one cache directory.

The scenario the serving re-architecture exists for: several client
threads hammer *two* independent service processes' HTTP fronts, both
services sharing one result-cache directory.  Afterwards the books must
balance exactly:

* zero dropped or duplicated jobs — every accepted job id is unique and
  reaches ``done`` with a feasible record,
* **exactly one synthesis per content address across both services** —
  proven from the cache journal, which records computed results only
  (cache hits are never re-journaled), so one line per key is the
  store-level single-flight working end to end,
* ``/stats`` totals agree with what the clients observed on the wire.

The two services' synthesis workers are child *processes*, so the
cross-process claim files are exercised for real even though the two
fronts live in this test process.
"""

import threading

import pytest

from repro.api.task import SynthesisTask
from repro.explore import ResultCache
from repro.serve import Client, start_server
from repro.serve.service import SynthesisService
from repro.store import iter_journal_payloads

#: Unique synthesis tasks; every client submits all of them, so every
#: key is contended by every client on both services.
POWERS = (10.0, 11.0, 12.0, 14.0, 16.0)

#: Client threads per service front.
CLIENTS_PER_SERVICE = 2


def specs():
    return [
        {"graph": "hal", "latency": 17, "power_budget": power}
        for power in POWERS
    ]


def expected_keys():
    return {
        SynthesisTask(graph="hal", latency=17, power_budget=power).cache_key()
        for power in POWERS
    }


@pytest.fixture()
def two_services(tmp_path):
    cache_dir = tmp_path / "cache"
    handles = []
    for name in ("a", "b"):
        service = SynthesisService(
            tmp_path / f"state-{name}",
            cache=ResultCache(cache_dir),
            workers=2,
        )
        handles.append(start_server(service=service))
    try:
        yield handles, cache_dir
    finally:
        for handle in handles:
            handle.close()


def _drive(url, results, errors):
    try:
        client = Client(url)
        accepted = client.submit(specs())
        final = client.wait(accepted, timeout=120)
        results.append((accepted, final))
    except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
        errors.append(exc)


def test_two_services_share_one_cache_without_duplicate_synthesis(two_services):
    handles, cache_dir = two_services
    results, errors = [], []
    threads = [
        threading.Thread(target=_drive, args=(handle.url, results, errors))
        for handle in handles
        for _client in range(CLIENTS_PER_SERVICE)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(180)
        assert not thread.is_alive(), "client thread wedged"
    assert errors == []

    total_jobs = len(handles) * CLIENTS_PER_SERVICE * len(POWERS)

    # -------- zero dropped or duplicated jobs ------------------------- #
    accepted_ids = [entry["id"] for accepted, _ in results for entry in accepted]
    assert len(results) == len(threads)
    assert len(accepted_ids) == total_jobs
    finals = [state for _, final in results for state in final]
    assert len(finals) == total_jobs
    assert all(state["state"] == "done" for state in finals)
    assert all(state["record"]["feasible"] for state in finals)
    for accepted, final in results:
        assert [s["id"] for s in final] == [e["id"] for e in accepted]

    # -------- exactly one synthesis per content address --------------- #
    journaled = [key for key, _record in iter_journal_payloads(cache_dir)]
    assert sorted(journaled) == sorted(set(journaled)), (
        "a content address was synthesized more than once across the two "
        f"services: {journaled}"
    )
    assert set(journaled) == expected_keys()

    # -------- /stats agrees with the wire ----------------------------- #
    stats = [Client(handle.url).stats() for handle in handles]
    assert sum(s["summary"]["total"] for s in stats) == total_jobs
    assert sum(s["cache"]["hits"] + s["cache"]["misses"] for s in stats) == total_jobs
    assert sum(s["cache"]["writes"] for s in stats) == len(POWERS)
    for s in stats:
        assert s["worker_mode"] == "process"
        assert s["queue"]["jobs"].get("failed", 0) == 0


def test_duplicate_submissions_within_one_service_hit_cache(tmp_path):
    with start_server(state_dir=tmp_path, workers=2) as handle:
        client = Client(handle.url)
        accepted = client.submit(specs() * 3)
        final = client.wait(accepted, timeout=120)
        assert all(state["state"] == "done" for state in final)
        cached = [state["record"]["cached"] for state in final]
        assert cached.count(False) == len(POWERS)
        assert cached.count(True) == len(POWERS) * 2
        journaled = [k for k, _ in iter_journal_payloads(handle.service.cache.root)]
        assert sorted(journaled) == sorted(expected_keys())
