"""repro.store — the storage subsystem behind every cache consumer.

One interface, two backends:

* :class:`~repro.store.base.ResultStore` — the contract: content-address
  point lookups, columnar range scans (:class:`~repro.store.base.StoreQuery`
  over family / scheduler / binder / selector / T / P / R / feasibility),
  inventory and compaction.
* :class:`~repro.store.legacy.LegacyStore` — the original
  one-JSON-file-per-key layout, unchanged on disk.
* :class:`~repro.store.columnar.ColumnarStore` — the scale backend:
  sharded CRC-framed append segments (single ``O_APPEND`` write per
  record, torn tails repaired), merged by :meth:`compact` into sorted,
  indexed column files that answer range queries with partial reads.

:mod:`~repro.store.priors` turns the same indexed columns into training
data: :func:`~repro.store.priors.mine_priors` scans win/latency
statistics per (family, constraint-bucket) so portfolio races launch
their historically-best strategy first.

:mod:`~repro.store.claims` adds the cross-process single-flight
protocol on top of either backend: per-content-address claim files
(atomic link-into-place, dead-pid/lease staleness, serialized breaking)
that let many processes share one store directory without ever
synthesizing the same task twice.

:func:`open_store` picks the backend for a directory — an existing
layout always wins over the caller's preference, so ``--cache-dir``
autodetects — and :func:`~repro.store.migrate.migrate_store` /
:func:`~repro.store.migrate.verify_migration` move a cache between
backends with bit-identical records or a loud failure.

The :class:`~repro.explore.cache.ResultCache` facade adds the journal,
stats counters, the in-memory layer and read/write gating on top; almost
every caller should keep going through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .base import (
    COLUMN_NAMES,
    ResultStore,
    StoreError,
    StoreQuery,
    StoredRow,
    family_of,
    row_from_payload,
)
from .claims import (
    Claim,
    ClaimError,
    ClaimInfo,
    break_stale_claims,
    claim_path,
    holder,
    try_acquire,
)
from .columnar import MANIFEST_NAME, ColumnarStore
from .journal import (
    JOURNAL_NAME,
    append_journal_line,
    iter_journal,
    iter_journal_payloads,
    journal_path,
    load_journal,
)
from .legacy import LegacyStore
from .migrate import migrate_store, verify_migration
from .priors import PairPrior, Priors, constraint_bucket, mine_priors, pair_label

#: Registered backend constructors by name.
BACKENDS = {
    LegacyStore.backend: LegacyStore,
    ColumnarStore.backend: ColumnarStore,
}


def detect_backend(root: Union[str, Path]) -> Optional[str]:
    """The backend an existing directory was written by, or ``None``.

    A ``store.json`` manifest names its backend explicitly; an
    ``objects/`` tree is the legacy layout; anything else (including a
    directory that does not exist yet) is undetermined.
    """
    root = Path(root).expanduser()
    manifest = root / MANIFEST_NAME
    if manifest.exists():
        try:
            declared = json.loads(manifest.read_text()).get("backend")
        except (OSError, ValueError) as exc:
            raise StoreError(f"corrupt store manifest at {manifest}: {exc}")
        if declared not in BACKENDS:
            raise StoreError(f"{manifest} names unknown backend {declared!r}")
        return declared
    if (root / "objects").is_dir():
        return LegacyStore.backend
    return None


def open_store(
    root: Union[str, Path], *, backend: Optional[str] = None
) -> ResultStore:
    """Open (or prepare) the store for a directory.

    An existing on-disk layout always decides the backend; asking for a
    different one raises instead of silently splitting the store across
    two formats (migrate instead).  For a fresh directory, ``backend``
    picks the layout (default ``legacy``, today's format).
    """
    detected = detect_backend(root)
    if backend is not None and backend not in BACKENDS:
        raise StoreError(
            f"unknown store backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    if detected is not None and backend is not None and backend != detected:
        raise StoreError(
            f"{root} already holds a {detected!r} store; refusing to open it as "
            f"{backend!r} — use 'repro store migrate' to convert it"
        )
    chosen = detected or backend or LegacyStore.backend
    return BACKENDS[chosen](root)


__all__ = [
    "BACKENDS",
    "COLUMN_NAMES",
    "Claim",
    "ClaimError",
    "ClaimInfo",
    "ColumnarStore",
    "JOURNAL_NAME",
    "LegacyStore",
    "PairPrior",
    "Priors",
    "ResultStore",
    "StoreError",
    "StoreQuery",
    "StoredRow",
    "append_journal_line",
    "break_stale_claims",
    "claim_path",
    "constraint_bucket",
    "detect_backend",
    "holder",
    "try_acquire",
    "family_of",
    "mine_priors",
    "pair_label",
    "iter_journal",
    "iter_journal_payloads",
    "journal_path",
    "load_journal",
    "migrate_store",
    "open_store",
    "row_from_payload",
    "verify_migration",
]
