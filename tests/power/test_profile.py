"""Unit tests for repro.power.profile."""

import pytest

from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.power.profile import (
    PowerProfile,
    combine_profiles,
    current_profile,
    profile_from_binding,
    profile_from_schedule,
)
from repro.scheduling.asap import asap_schedule


def schedule_for(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return asap_schedule(
        cdfg, selection_delays(selection, cdfg), selection_powers(selection, cdfg)
    )


class TestPowerProfile:
    def test_statistics(self):
        profile = PowerProfile.of([1.0, 3.0, 2.0])
        assert profile.peak == 3.0
        assert profile.average == pytest.approx(2.0)
        assert profile.total_energy == pytest.approx(6.0)
        assert profile.peak_to_average == pytest.approx(1.5)
        assert len(profile) == 3
        assert profile[1] == 3.0

    def test_empty_profile(self):
        profile = PowerProfile.of([])
        assert profile.peak == 0.0
        assert profile.average == 0.0
        assert profile.peak_to_average == 0.0

    def test_cycles_above_and_exceeds(self):
        profile = PowerProfile.of([1.0, 5.0, 2.0, 7.0])
        assert profile.cycles_above(4.0) == [1, 3]
        assert profile.exceeds(6.9)
        assert not profile.exceeds(7.0)

    def test_padding(self):
        profile = PowerProfile.of([1.0]).padded(3)
        assert list(profile) == [1.0, 0.0, 0.0]
        assert len(PowerProfile.of([1.0, 2.0]).padded(1)) == 2

    def test_describe_contains_bars(self):
        text = PowerProfile.of([1.0, 2.0], label="x").describe()
        assert "peak=2.00" in text
        assert "#" in text


class TestFromSchedule:
    def test_matches_schedule_profile(self, hal, library):
        schedule = schedule_for(hal, library)
        profile = profile_from_schedule(schedule)
        assert list(profile) == schedule.power_profile()
        assert profile.peak == pytest.approx(schedule.peak_power)

    def test_binding_override_changes_power(self, hal, library):
        schedule = schedule_for(hal, library)
        boosted = {name: 10.0 for name in schedule.start_times}
        profile = profile_from_binding(schedule, boosted)
        assert profile.peak > profile_from_schedule(schedule).peak

    def test_energy_conserved(self, cosine, library):
        schedule = schedule_for(cosine, library)
        profile = profile_from_schedule(schedule)
        assert profile.total_energy == pytest.approx(schedule.total_energy)


class TestCombining:
    def test_combine_sums_cycle_wise(self):
        a = PowerProfile.of([1.0, 2.0])
        b = PowerProfile.of([3.0])
        combined = combine_profiles([a, b])
        assert list(combined) == [4.0, 2.0]

    def test_current_profile_scales_by_voltage(self):
        profile = PowerProfile.of([2.0, 4.0])
        assert current_profile(profile, supply_voltage=2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            current_profile(profile, supply_voltage=0.0)
