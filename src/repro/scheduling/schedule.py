"""Schedule result object.

A :class:`Schedule` pairs a CDFG with start times, per-operation delays
and per-operation per-cycle powers.  It provides the derived quantities
every other part of the flow needs:

* the per-cycle **power profile** (Figure 1 of the paper is exactly two of
  these profiles),
* the **makespan** (latency actually used),
* **legality checks** (precedence, latency bound, power bound),
* execution intervals used by the compatibility-graph builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.cdfg import CDFG
from .constraints import PowerConstraint, TimeConstraint


class ScheduleError(Exception):
    """Raised when a schedule is malformed or violates its contract."""


@dataclass
class Schedule:
    """An assignment of start cycles to CDFG operations.

    Attributes:
        cdfg: The scheduled graph.
        start_times: Operation name → start cycle (0-based).
        delays: Operation name → execution latency in cycles.
        powers: Operation name → per-cycle power while executing.
        label: Free-form description (scheduler name, constraint summary).
    """

    cdfg: CDFG
    start_times: Dict[str, int]
    delays: Dict[str, int]
    powers: Dict[str, float]
    label: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [
            n
            for n in self.cdfg.schedulable_operations()
            if n not in self.start_times
        ]
        if missing:
            raise ScheduleError(f"schedule missing operations: {sorted(missing)}")
        for name, start in self.start_times.items():
            if start < 0:
                raise ScheduleError(f"operation {name!r} scheduled at negative cycle {start}")
            if name not in self.delays:
                raise ScheduleError(f"no delay recorded for operation {name!r}")
            if name not in self.powers:
                raise ScheduleError(f"no power recorded for operation {name!r}")

    # ------------------------------------------------------------------ #
    # Basic derived quantities
    # ------------------------------------------------------------------ #
    def start(self, op_name: str) -> int:
        try:
            return self.start_times[op_name]
        except KeyError:
            raise ScheduleError(f"operation {op_name!r} is not scheduled") from None

    def finish(self, op_name: str) -> int:
        """First cycle *after* the operation completes."""
        return self.start(op_name) + self.delays[op_name]

    def interval(self, op_name: str) -> Tuple[int, int]:
        """Half-open execution interval ``[start, finish)``."""
        return self.start(op_name), self.finish(op_name)

    @property
    def makespan(self) -> int:
        """Number of cycles from cycle 0 until the last operation finishes."""
        if not self.start_times:
            return 0
        return max(self.finish(n) for n in self.start_times)

    def operations_in_cycle(self, cycle: int) -> List[str]:
        """Names of operations executing during ``cycle``."""
        return [
            n
            for n in self.start_times
            if self.start(n) <= cycle < self.finish(n)
        ]

    # ------------------------------------------------------------------ #
    # Power
    # ------------------------------------------------------------------ #
    def power_profile(self, horizon: Optional[int] = None) -> List[float]:
        """Per-cycle total power from cycle 0 to ``horizon`` (default makespan)."""
        horizon = self.makespan if horizon is None else max(horizon, self.makespan)
        profile = [0.0] * horizon
        for name in self.start_times:
            power = self.powers[name]
            if power == 0:
                continue
            for cycle in range(self.start(name), self.finish(name)):
                profile[cycle] += power
        return profile

    @property
    def peak_power(self) -> float:
        """Largest per-cycle power over the whole schedule."""
        profile = self.power_profile()
        return max(profile) if profile else 0.0

    @property
    def average_power(self) -> float:
        """Mean per-cycle power over the makespan."""
        profile = self.power_profile()
        return sum(profile) / len(profile) if profile else 0.0

    @property
    def total_energy(self) -> float:
        """Total energy = Σ per-operation power × delay."""
        return sum(self.powers[n] * self.delays[n] for n in self.start_times)

    # ------------------------------------------------------------------ #
    # Legality
    # ------------------------------------------------------------------ #
    def precedence_violations(self) -> List[Tuple[str, str]]:
        """Data edges whose consumer starts before its producer finishes."""
        violations = []
        for src, dst in self.cdfg.edges():
            if src not in self.start_times or dst not in self.start_times:
                continue
            if self.start(dst) < self.finish(src):
                violations.append((src, dst))
        return violations

    def respects_precedence(self) -> bool:
        return not self.precedence_violations()

    def respects_time(self, constraint: TimeConstraint) -> bool:
        return constraint.satisfied_by(self.makespan)

    def respects_power(self, constraint: PowerConstraint) -> bool:
        return all(constraint.allows(p) for p in self.power_profile())

    def verify(
        self,
        time: Optional[TimeConstraint] = None,
        power: Optional[PowerConstraint] = None,
    ) -> None:
        """Raise :class:`ScheduleError` if the schedule is illegal.

        Always checks precedence; latency and power are checked when the
        corresponding constraint is supplied.
        """
        violations = self.precedence_violations()
        if violations:
            raise ScheduleError(f"precedence violations: {violations}")
        if time is not None and not self.respects_time(time):
            raise ScheduleError(
                f"makespan {self.makespan} exceeds latency bound {time.latency}"
            )
        if power is not None and not self.respects_power(power):
            raise ScheduleError(
                f"peak power {self.peak_power:.3f} exceeds budget {power.max_power:.3f}"
            )

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def by_cycle(self) -> Dict[int, List[str]]:
        """Operations grouped by start cycle (ASCII Gantt helper)."""
        grouped: Dict[int, List[str]] = {}
        for name in sorted(self.start_times):
            grouped.setdefault(self.start(name), []).append(name)
        return dict(sorted(grouped.items()))

    def describe(self) -> str:
        """Multi-line textual summary of the schedule."""
        lines = [
            f"schedule {self.label or self.cdfg.name!r}: "
            f"makespan={self.makespan} peak_power={self.peak_power:.2f} "
            f"energy={self.total_energy:.2f}"
        ]
        for cycle, names in self.by_cycle().items():
            lines.append(f"  cycle {cycle:3d}: {', '.join(names)}")
        return "\n".join(lines)

    def copy_with(self, **overrides: object) -> "Schedule":
        """A shallow copy with some fields replaced (used by re-scheduling)."""
        data = {
            "cdfg": self.cdfg,
            "start_times": dict(self.start_times),
            "delays": dict(self.delays),
            "powers": dict(self.powers),
            "label": self.label,
            "metadata": dict(self.metadata),
        }
        data.update(overrides)
        return Schedule(**data)  # type: ignore[arg-type]


def empty_power_profile(length: int) -> List[float]:
    """A zero power profile of ``length`` cycles (helper for the schedulers)."""
    if length < 0:
        raise ValueError("profile length must be non-negative")
    return [0.0] * length


def add_to_profile(
    profile: List[float],
    start: int,
    delay: int,
    power: float,
) -> List[float]:
    """Accumulate an operation's power into a profile (growing it if needed)."""
    needed = start + delay
    if needed > len(profile):
        profile.extend([0.0] * (needed - len(profile)))
    for cycle in range(start, start + delay):
        profile[cycle] += power
    return profile


def profile_allows(
    profile: Mapping[int, float] | List[float],
    start: int,
    delay: int,
    power: float,
    constraint: PowerConstraint,
) -> bool:
    """True if adding an operation at ``start`` keeps every cycle within budget."""
    if constraint.is_unbounded:
        return True
    for cycle in range(start, start + delay):
        existing = profile[cycle] if cycle < len(profile) else 0.0
        if not constraint.allows(existing + power):
            return False
    return True
