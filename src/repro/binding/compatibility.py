"""Time-extended, power-aware compatibility graph (the paper's ``V1``).

Jou, Kuang & Chen's partial clique partitioning synthesis builds a
*compatibility graph* whose vertices are operations and whose edges
connect pairs of operations that may share one functional unit.  Two
operations are compatible when

1. some library module implements both operation types, and
2. their *time-extended* execution windows allow the two executions to be
   placed without overlapping (one can finish before the other starts
   within their respective windows).

The paper extends this with **power awareness**: the windows are the
power-feasible pasap/palap windows, so a pair is compatible only if a
placement exists that also respects the per-cycle power budget (to the
accuracy of the pasap/palap heuristics).

The graph produced here is consumed two ways:

* directly by the generic clique partitioner (:mod:`repro.binding.clique`)
  for the "bind after scheduling" flows and for the unit tests, and
* as the candidate-pair oracle inside the combined synthesis engine
  (:mod:`repro.synthesis.engine`), which additionally re-validates every
  tentative merge against freshly recomputed windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..library.module import FUModule
from ..scheduling.mobility import Window, WindowSet
from .intervals import Interval


@dataclass(frozen=True)
class CompatiblePair:
    """An edge of the compatibility graph.

    Attributes:
        first: Operation name (lexicographically smaller).
        second: Operation name.
        modules: Library modules able to execute both operations.
    """

    first: str
    second: str
    modules: Tuple[FUModule, ...]

    @property
    def best_module(self) -> FUModule:
        """Smallest-area module able to host both operations."""
        return min(self.modules, key=lambda m: (m.area, m.latency, m.power))


@dataclass
class CompatibilityGraph:
    """Power-aware compatibility relation over a set of operations."""

    cdfg: CDFG
    graph: nx.Graph = field(default_factory=nx.Graph)

    def add_operation(self, op_name: str) -> None:
        self.graph.add_node(op_name)

    def add_pair(self, pair: CompatiblePair) -> None:
        self.graph.add_edge(pair.first, pair.second, pair=pair)

    def operations(self) -> List[str]:
        return list(self.graph.nodes)

    def pairs(self) -> List[CompatiblePair]:
        return [data["pair"] for _, _, data in self.graph.edges(data=True)]

    def compatible(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def pair(self, a: str, b: str) -> Optional[CompatiblePair]:
        if not self.graph.has_edge(a, b):
            return None
        return self.graph[a][b]["pair"]

    def neighbours(self, op_name: str) -> List[str]:
        return list(self.graph.neighbors(op_name))

    def degree(self, op_name: str) -> int:
        return self.graph.degree(op_name)

    def density(self) -> float:
        """Edges present divided by edges possible (0 for trivial graphs)."""
        n = self.graph.number_of_nodes()
        if n < 2:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / (n * (n - 1))

    def is_clique(self, members: Iterable[str]) -> bool:
        members = list(members)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if not self.compatible(a, b):
                    return False
        return True

    def common_modules(self, members: Iterable[str]) -> List[FUModule]:
        """Modules able to execute *every* member operation."""
        members = list(members)
        if len(members) < 2:
            return []
        common: Optional[FrozenSet[str]] = None
        module_by_name: Dict[str, FUModule] = {}
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pair = self.pair(a, b)
                if pair is None:
                    return []
                names = frozenset(m.name for m in pair.modules)
                for m in pair.modules:
                    module_by_name[m.name] = m
                common = names if common is None else (common & names)
        if not common:
            return []
        return [module_by_name[name] for name in sorted(common)]


def windows_allow_sharing(
    window_a: Window,
    delay_a: int,
    window_b: Window,
    delay_b: int,
) -> bool:
    """True if two operations can execute sequentially inside their windows.

    Either ``a`` can finish before ``b`` starts (a placed at its earliest,
    b at its latest) or the other way round.  This is the "time-extended"
    test: it uses the full windows rather than one fixed schedule.
    """
    a_before_b = window_a.earliest + delay_a <= window_b.latest
    b_before_a = window_b.earliest + delay_b <= window_a.latest
    return a_before_b or b_before_a


def shared_modules(
    library: FULibrary,
    optype_a,
    optype_b,
) -> List[FUModule]:
    """Modules implementing both operation types."""
    return [
        module
        for module in library.modules()
        if module.supports(optype_a) and module.supports(optype_b)
    ]


def build_compatibility_graph(
    cdfg: CDFG,
    library: FULibrary,
    windows: WindowSet,
    delays: Mapping[str, int],
    operations: Optional[Iterable[str]] = None,
) -> CompatibilityGraph:
    """Construct the power-aware compatibility graph ``V1``.

    Args:
        cdfg: Graph under synthesis.
        library: Technology library.
        windows: Power-feasible pasap/palap windows (already reflect the
            power budget and any locked operations).
        delays: Per-operation delay under the current module selection.
        operations: Subset of operations to include (default: every
            non-virtual operation).

    Returns:
        The compatibility graph over the requested operations.
    """
    if operations is None:
        operations = cdfg.schedulable_operations()
    operations = [n for n in operations if not cdfg.operation(n).is_virtual]

    compatibility = CompatibilityGraph(cdfg=cdfg)
    for name in operations:
        compatibility.add_operation(name)

    for i, a in enumerate(operations):
        for b in operations[i + 1:]:
            type_a = cdfg.operation(a).optype
            type_b = cdfg.operation(b).optype
            modules = shared_modules(library, type_a, type_b)
            if not modules:
                continue
            if a not in windows or b not in windows:
                continue
            if not windows_allow_sharing(windows[a], delays[a], windows[b], delays[b]):
                continue
            first, second = sorted((a, b))
            compatibility.add_pair(CompatiblePair(first, second, tuple(modules)))
    return compatibility


def instance_accepts_operation(
    op_name: str,
    op_window: Window,
    op_delay: int,
    busy: List[Interval],
) -> Optional[int]:
    """Earliest start in ``op_window`` avoiding an instance's busy intervals.

    Returns the start cycle, or ``None`` when no start inside the window
    avoids every busy interval.
    """
    for start in range(op_window.earliest, op_window.latest + 1):
        candidate = Interval(start, start + op_delay)
        if not any(candidate.overlaps(existing) for existing in busy):
            return start
    return None
