"""Engine scalability — synthesis run time vs. problem size.

Not a paper artifact, but a useful engineering benchmark: the greedy
partial-clique engine is quadratic-ish in the number of operations, and
this benchmark tracks the wall-clock cost of one synthesis run on random
layered graphs of growing size so regressions in the engine's complexity
show up in the benchmark history.

The 80- and 120-operation sizes were added together with the incremental
hot-path work (cached CDFG topology, Schedule-free pasap/palap cores,
incremental locked profiles); before that work a 120-operation synthesis
took over a second, which is why the recorded history in
``BENCH_scalability.json`` starts at 40 operations.  Larger graphs
saturate the power budget that suits the small ones, so each size pins
its own budget.

Record a run into the benchmark history with::

    python benchmarks/record.py --label after

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import pytest

from repro.ir.analysis import critical_path_length
from repro.library.selection import MinPowerSelection, selection_delays
from repro.suite.generators import GeneratorConfig, random_cdfg
from repro.synthesis.engine import synthesize

#: Per-size power budget: the random 120-op layered graphs need more
#: headroom than 30 power units to stay feasible at cp + 8 cycles.
POWER_BUDGETS = {10: 30.0, 20: 30.0, 40: 30.0, 80: 30.0, 120: 40.0}


def make_case(operations: int, library):
    cdfg = random_cdfg(
        GeneratorConfig(
            operations=operations,
            inputs=4,
            levels=max(3, operations // 6),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=3,
            seed=operations,
        )
    )
    selection = MinPowerSelection().select(cdfg, library)
    latency = critical_path_length(cdfg, selection_delays(selection, cdfg)) + 8
    return cdfg, latency


@pytest.mark.parametrize("operations", sorted(POWER_BUDGETS))
def test_synthesis_scalability(benchmark, library, operations):
    cdfg, latency = make_case(operations, library)
    result = benchmark.pedantic(
        synthesize,
        args=(cdfg, library, latency, POWER_BUDGETS[operations]),
        rounds=3,
        iterations=1,
    )
    result.verify()
    assert result.latency <= latency
