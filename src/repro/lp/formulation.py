"""Time-indexed ILP formulation of power-constrained scheduling.

This is the bridge between the paper's scheduling problem and the exact
MILP machinery in :mod:`repro.lp.simplex` / :mod:`repro.lp.branch_bound`:

* one binary ``x[op, t]`` per operation per cycle in its ASAP/ALAP
  mobility window (the same windows the classical schedulers compute);
* an **assignment** row per operation (each op starts exactly once);
* **precedence** rows per data edge — by default the *strong* cumulative
  form ``sum(x[consumer, <=c]) <= sum(x[producer, <=c - d])``, whose LP
  relaxation is dramatically tighter than the textbook start-time
  difference row (which remains as a compact fallback for big models);
* a **power** row per cycle bounding the summed draw of every operation
  that could be executing then, with the same ``max_power + tolerance``
  semantics the heuristic schedulers and the certificate checker use;
* optional **register-pressure** rows linearizing value liveness exactly
  the way :mod:`repro.verify.certificate` re-derives lifetimes (live
  from producer finish to one past the last consumer start), in two
  memory models:

  - ``optimistic`` — one register per live *value* (multi-consumer
    values share storage), matching the repo's left-edge allocator;
  - ``pessimistic`` — one register per live *edge* (every consumer
    holds its own copy), an upper bound for architectures without
    shared operand storage.

Solutions come back as ordinary :class:`~repro.scheduling.schedule.Schedule`
objects, so everything downstream (binding, certificates, differential
checking) applies unchanged.  Infeasibility verdicts are *proofs* — the
solver works in exact rational arithmetic — which is what qualifies the
``ilp`` strategy as a second exact oracle next to
:mod:`repro.scheduling.exact`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.cdfg import CDFG, CDFGError
from ..ir.operation import OpType
from ..scheduling.alap import alap_schedule
from ..scheduling.asap import asap_schedule
from ..scheduling.constraints import PowerConstraint
from ..scheduling.schedule import Schedule, ScheduleError
from .branch_bound import BranchBoundResult
from .model import LinearProgram, as_fraction
from .simplex import INFEASIBLE, OPTIMAL
from .solver import solve

#: Register-pressure linearizations offered by the formulation.
MEMORY_MODELS = ("optimistic", "pessimistic")

#: Above this many strong precedence rows the builder falls back to the
#: compact start-time-difference form (weaker relaxation, far fewer rows).
STRONG_ROW_CAP = 4000

#: Build-time guard: models with more start binaries than this are not
#: attempted (the verdict becomes "inconclusive", never "infeasible").
MAX_START_VARIABLES = 20_000


class ILPScheduleError(ScheduleError):
    """Base class for ILP scheduling failures."""


class ILPInfeasibleError(ILPScheduleError):
    """Proof that no schedule satisfies the constraints.

    Raised only on a genuine infeasibility certificate from the exact
    branch-and-bound (or a latency bound below the critical path) —
    never for resource exhaustion, which is :class:`ILPLimitError`.
    """


class ILPLimitError(ILPScheduleError):
    """The solve was inconclusive (node budget or model-size guard).

    Deliberately distinct from :class:`ILPInfeasibleError`: the
    differential harness must not treat an exhausted search as an
    infeasibility verdict.
    """


@dataclass
class ScheduleModel:
    """A built time-indexed model plus the maps needed to decode it.

    Attributes:
        program: The :class:`~repro.lp.model.LinearProgram`.
        starts: ``(operation, cycle) -> variable index`` for the binaries.
        windows: ``operation -> (asap, alap)`` start-cycle window.
        groups: SOS1 branching groups (one per operation with mobility),
            ready to pass to the branch-and-bound.
        makespan: Index of the continuous makespan variable.
        latency: The latency bound the model was built against.
        memory_model: Which register linearization was used (``None``
            when register pressure is not modelled).
    """

    program: LinearProgram
    starts: Dict[Tuple[str, int], int]
    windows: Dict[str, Tuple[int, int]]
    groups: List[List[Tuple[int, int]]]
    makespan: Optional[int] = None
    latency: int = 0
    memory_model: Optional[str] = None
    #: Diagnostic counts (strong vs compact precedence, skipped rows).
    stats: Dict[str, int] = field(default_factory=dict)

    def decode_starts(self, values: Sequence[Fraction]) -> Dict[str, int]:
        """Start times from an integral solution vector."""
        starts: Dict[str, int] = {}
        for (name, cycle), index in self.starts.items():
            if values[index] == 1:
                starts[name] = cycle
        return starts


def _mobility_windows(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    latency: int,
) -> Dict[str, Tuple[int, int]]:
    """ASAP/ALAP start windows; raises ILPInfeasibleError below critical path."""
    asap = asap_schedule(cdfg, delays, powers, label="ilp.asap")
    try:
        alap = alap_schedule(cdfg, delays, powers, latency, label="ilp.alap")
    except CDFGError as exc:
        raise ILPInfeasibleError(
            f"no schedule for {cdfg.name!r} meets T={latency}: {exc}"
        ) from exc
    return {
        name: (asap.start(name), alap.start(name))
        for name in cdfg.topological_order()
    }


def _value_edges(cdfg: CDFG) -> Dict[str, List[str]]:
    """Producer -> consumers for every stored value.

    Mirrors the certificate checker's lifetime rule: outputs and virtual
    operations store nothing, and neither do values nobody consumes.
    Consumers of any type count (an OUTPUT consumer keeps the value live).
    """
    edges: Dict[str, List[str]] = {}
    for name in cdfg.topological_order():
        op = cdfg.operation(name)
        if op.optype is OpType.OUTPUT or op.is_virtual:
            continue
        consumers = list(cdfg.successors(name))
        if consumers:
            edges[name] = consumers
    return edges


def build_schedule_model(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    *,
    register_budget: Optional[int] = None,
    memory_model: str = "optimistic",
    strong_row_cap: int = STRONG_ROW_CAP,
) -> ScheduleModel:
    """Build the time-indexed MILP for one scheduling instance.

    Args:
        cdfg: Graph to schedule (every operation in topological order is
            modelled, virtual ones included, exactly like ``exact``).
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power draw.
        power: Per-cycle power budget (may be unbounded).
        latency: Cycle budget ``T``; every operation finishes by it.
        register_budget: When set, per-cycle register usage is capped at
            this count (a new constraint dimension).
        memory_model: ``"optimistic"`` (values share storage across
            consumers) or ``"pessimistic"`` (one register per live edge).
        strong_row_cap: Row budget above which precedence switches to
            the compact form.

    Returns:
        A :class:`ScheduleModel` ready for :func:`solve_model`.

    Raises:
        ILPInfeasibleError: latency below the critical path.
        ILPLimitError: the model exceeds :data:`MAX_START_VARIABLES`.
        ValueError: unknown memory model.
    """
    if memory_model not in MEMORY_MODELS:
        raise ValueError(
            f"unknown memory model {memory_model!r}; use one of {MEMORY_MODELS}"
        )

    windows = _mobility_windows(cdfg, delays, powers, latency)
    size = sum(late - early + 1 for early, late in windows.values())
    if size > MAX_START_VARIABLES:
        raise ILPLimitError(
            f"time-indexed model for {cdfg.name!r} needs {size} start "
            f"variables (cap {MAX_START_VARIABLES})"
        )

    program = LinearProgram(f"ilp[{cdfg.name},T={latency}]")
    model = ScheduleModel(
        program=program,
        starts={},
        windows=windows,
        groups=[],
        latency=latency,
        memory_model=memory_model if register_budget is not None else None,
    )
    order = cdfg.topological_order()

    # --- start binaries + assignment rows + branching groups ---------- #
    for name in order:
        early, late = windows[name]
        group: List[Tuple[int, int]] = []
        for cycle in range(early, late + 1):
            index = program.add_binary(f"x[{name},{cycle}]")
            model.starts[(name, cycle)] = index
            group.append((index, cycle))
        program.add_constraint(
            {index: 1 for index, _ in group}, "==", 1, name=f"assign[{name}]"
        )
        if len(group) > 1:
            model.groups.append(group)

    def started_by(name: str, cycle: int) -> Dict[int, int]:
        """Coefficients of ``sum(x[name, t <= cycle])`` within the window."""
        early, late = windows[name]
        return {
            model.starts[(name, t)]: 1
            for t in range(early, min(late, cycle) + 1)
        }

    # --- precedence --------------------------------------------------- #
    strong_rows = 0
    for producer, consumer in cdfg.edges():
        early_c, late_c = windows[consumer]
        _, late_p = windows[producer]
        strong_rows += max(
            0, min(late_c, late_p + delays[producer] - 1) - early_c + 1
        )
    use_strong = strong_rows <= strong_row_cap
    model.stats["precedence_form"] = 1 if use_strong else 0
    for producer, consumer in cdfg.edges():
        delay = delays[producer]
        early_c, late_c = windows[consumer]
        _, late_p = windows[producer]
        if use_strong:
            # Started-by-c consumer implies started-by-(c - d) producer.
            for cycle in range(early_c, min(late_c, late_p + delay - 1) + 1):
                row: Dict[int, int] = dict(started_by(consumer, cycle))
                for index, coefficient in started_by(producer, cycle - delay).items():
                    row[index] = row.get(index, 0) - coefficient
                program.add_constraint(
                    row, "<=", 0, name=f"prec[{producer}->{consumer}@{cycle}]"
                )
        else:
            row = {}
            for (name, cycle), index in model.starts.items():
                if name == consumer:
                    row[index] = row.get(index, 0) + cycle
                elif name == producer:
                    row[index] = row.get(index, 0) - cycle
            program.add_constraint(
                row, ">=", delay, name=f"prec[{producer}->{consumer}]"
            )

    # --- per-cycle power budget --------------------------------------- #
    if not power.is_unbounded:
        budget = as_fraction(power.max_power) + as_fraction(power.tolerance)
        skipped = 0
        for cycle in range(latency):
            row = {}
            possible = Fraction(0)
            for name in order:
                draw = powers[name]
                delay = delays[name]
                if draw <= 0 or delay <= 0:
                    continue
                early, late = windows[name]
                lo = max(early, cycle - delay + 1)
                hi = min(late, cycle)
                if lo > hi:
                    continue
                draw_f = as_fraction(draw)
                possible += draw_f
                for t in range(lo, hi + 1):
                    index = model.starts[(name, t)]
                    row[index] = row.get(index, Fraction(0)) + draw_f
            if possible <= budget:
                skipped += 1
                continue  # this cycle can never exceed the budget
            program.add_constraint(row, "<=", budget, name=f"power[{cycle}]")
        model.stats["power_rows_skipped"] = skipped

    # --- register pressure -------------------------------------------- #
    if register_budget is not None:
        values = _value_edges(cdfg)
        # Per-edge liveness at cycle c: F_prod(c) - S_cons(c - 1), which
        # is 0/1 at every precedence-feasible integer point.
        for cycle in range(latency + 1):
            live: List[Tuple[str, List[str]]] = []
            terms = 0
            for producer, consumers in values.items():
                early_p, _ = windows[producer]
                if cycle < early_p + delays[producer]:
                    continue
                live_edges = [
                    consumer
                    for consumer in consumers
                    if cycle <= windows[consumer][1]
                ]
                if not live_edges:
                    continue
                live.append((producer, live_edges))
                if memory_model == "optimistic":
                    terms += 1
                else:
                    terms += len(live_edges)
            if not live:
                continue
            if terms <= register_budget:
                continue  # this cycle can never exceed the budget
            usage: Dict[int, Fraction] = {}
            for producer, live_edges in live:
                finished = started_by(producer, cycle - delays[producer])
                if memory_model == "optimistic" and len(live_edges) > 1:
                    # One register serves every consumer: a continuous
                    # proxy v >= each edge's liveness joins the row once.
                    proxy = program.add_variable(
                        f"v[{producer},{cycle}]", lower=0, upper=1
                    )
                    for consumer in live_edges:
                        row = {proxy: Fraction(-1)}
                        for index, coefficient in finished.items():
                            row[index] = row.get(index, Fraction(0)) + coefficient
                        for index, coefficient in started_by(consumer, cycle - 1).items():
                            row[index] = row.get(index, Fraction(0)) - coefficient
                        program.add_constraint(
                            row, "<=", 0, name=f"live[{producer}->{consumer}@{cycle}]"
                        )
                    usage[proxy] = usage.get(proxy, Fraction(0)) + 1
                else:
                    for consumer in live_edges:
                        for index, coefficient in finished.items():
                            usage[index] = usage.get(index, Fraction(0)) + coefficient
                        for index, coefficient in started_by(consumer, cycle - 1).items():
                            usage[index] = usage.get(index, Fraction(0)) - coefficient
            program.add_constraint(
                usage, "<=", register_budget, name=f"regs[{cycle}]"
            )

    # --- objective: minimize the makespan ----------------------------- #
    critical_end = max(
        windows[name][0] + delays[name] for name in order
    ) if order else 0
    makespan = program.add_variable(
        "makespan", lower=critical_end, upper=latency
    )
    model.makespan = makespan
    for name in cdfg.sinks():
        row = {makespan: Fraction(1)}
        early, late = windows[name]
        for cycle in range(early, late + 1):
            if cycle:
                row[model.starts[(name, cycle)]] = Fraction(-cycle)
        program.add_constraint(
            row, ">=", delays[name], name=f"makespan[{name}]"
        )
    program.set_objective({makespan: 1})
    return model


def solve_model(
    model: ScheduleModel,
    *,
    solver: str = "builtin",
    node_limit: Optional[int] = None,
) -> BranchBoundResult:
    """Run a built model through the (pluggable) MILP solver."""
    return solve(
        model.program,
        solver,
        groups=model.groups,
        node_limit=node_limit,
        integral_objective=True,
    )


def _constraint_summary(
    power: PowerConstraint, register_budget: Optional[int]
) -> str:
    parts = []
    if not power.is_unbounded:
        parts.append("the power budget")
    if register_budget is not None:
        parts.append(f"register budget {register_budget}")
    return " under " + " and ".join(parts) if parts else ""


def ilp_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    power: PowerConstraint,
    latency: int,
    *,
    register_budget: Optional[int] = None,
    memory_model: str = "optimistic",
    solver: str = "builtin",
    node_limit: Optional[int] = None,
    label: str = "ilp",
) -> Schedule:
    """Makespan-optimal schedule under ``(T, P[, R])`` by exact ILP.

    The drop-in counterpart of
    :func:`repro.scheduling.exact.exact_schedule`, with two upgrades: no
    hard size cap (scaling is governed by the model, not an operation
    count) and an optional register budget ``R``.

    Raises:
        ILPInfeasibleError: *proof* that no schedule meets the bounds.
        ILPLimitError: the search was inconclusive (node/size limits).
    """
    model = build_schedule_model(
        cdfg,
        delays,
        powers,
        power,
        latency,
        register_budget=register_budget,
        memory_model=memory_model,
    )
    outcome = solve_model(model, solver=solver, node_limit=node_limit)
    if outcome.status == INFEASIBLE:
        raise ILPInfeasibleError(
            f"no schedule for {cdfg.name!r} meets T={latency}"
            + _constraint_summary(power, register_budget)
        )
    if outcome.status != OPTIMAL:
        raise ILPLimitError(
            f"ilp solve for {cdfg.name!r} inconclusive after "
            f"{outcome.nodes} nodes (limit {node_limit})"
        )
    starts = model.decode_starts(outcome.values)
    metadata: Dict[str, object] = {
        "optimal_makespan": int(outcome.objective),
        "latency_bound": latency,
        "ilp_nodes": outcome.nodes,
        "ilp_iterations": outcome.iterations,
    }
    if register_budget is not None:
        metadata["register_budget"] = register_budget
        metadata["memory_model"] = memory_model
    return Schedule(
        cdfg=cdfg,
        start_times=starts,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata=metadata,
    )


def schedule_register_usage(schedule: Schedule, memory_model: str = "optimistic") -> int:
    """Peak register usage of a concrete schedule under a memory model.

    ``optimistic`` matches :func:`repro.binding.register.register_lower_bound`
    (one register per live value); ``pessimistic`` counts one register per
    live *edge*, the quantity the pessimistic formulation constrains.
    """
    if memory_model not in MEMORY_MODELS:
        raise ValueError(
            f"unknown memory model {memory_model!r}; use one of {MEMORY_MODELS}"
        )
    if memory_model == "optimistic":
        from ..binding.register import register_lower_bound

        return register_lower_bound(schedule)
    events: Dict[int, int] = {}
    for producer, consumers in _value_edges(schedule.cdfg).items():
        birth = schedule.finish(producer)
        for consumer in consumers:
            death = max(schedule.start(consumer) + 1, birth + 1)
            events[birth] = events.get(birth, 0) + 1
            events[death] = events.get(death, 0) - 1
    peak = current = 0
    for cycle in sorted(events):
        current += events[cycle]
        peak = max(peak, current)
    return peak


def minimum_registers(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    latency: int,
    *,
    power: Optional[PowerConstraint] = None,
    memory_model: str = "optimistic",
    solver: str = "builtin",
    node_limit: Optional[int] = None,
) -> int:
    """Smallest peak register count any schedule achieves under ``T`` (and ``P``).

    The schedule-side analogue of
    :func:`repro.binding.register.register_lower_bound` (which bounds one
    *fixed* schedule): this optimizes over every legal schedule, so it is
    the true floor for register-budget feasibility at this latency.

    Implemented as a descending search over budgeted feasibility models
    rather than a direct min-max objective: each feasible solve tightens
    the incumbent to the register count its schedule *actually* uses, so
    the search performs a handful of cheap feasible solves plus exactly
    one infeasibility proof at the floor.  (The direct objective model is
    catastrophically degenerate for an exact tableau simplex.)

    Raises:
        ILPInfeasibleError: no schedule meets ``T`` (and ``P``) at all.
        ILPLimitError: the search was inconclusive (``node_limit``).
    """
    constraint = power if power is not None else PowerConstraint.unbounded()
    # Unbudgeted solve: proves (T, P) feasibility and seeds the incumbent.
    schedule = ilp_schedule(
        cdfg,
        delays,
        powers,
        constraint,
        latency,
        memory_model=memory_model,
        solver=solver,
        node_limit=node_limit,
        label="ilp.minreg",
    )
    best = schedule_register_usage(schedule, memory_model)
    while best > 0:
        model = build_schedule_model(
            cdfg,
            delays,
            powers,
            constraint,
            latency,
            register_budget=best - 1,
            memory_model=memory_model,
        )
        outcome = solve_model(model, solver=solver, node_limit=node_limit)
        if outcome.status == INFEASIBLE:
            break  # proof: best is the floor
        if outcome.status != OPTIMAL:
            raise ILPLimitError(
                f"register minimization for {cdfg.name!r} inconclusive at "
                f"budget {best - 1} after {outcome.nodes} nodes "
                f"(limit {node_limit})"
            )
        starts = model.decode_starts(outcome.values)
        tightened = schedule_register_usage(
            Schedule(
                cdfg=cdfg,
                start_times=starts,
                delays=dict(delays),
                powers=dict(powers),
                label="ilp.minreg",
            ),
            memory_model,
        )
        best = min(best - 1, tightened)
    return best
