"""Crash-recovery tests: SIGKILL the workers, SIGKILL the service.

The serving stack promises that violent death is survivable at every
level:

* a synthesis *child* killed mid-job surfaces as a worker crash — the
  job is requeued, the slot respawned, and the batch still completes,
* a whole *service process* killed mid-batch leaves a queue log whose
  replay requeues everything in flight; a fresh service on the same
  state directory finishes the batch, and the shared cache journal
  still shows at most one synthesis per content address,
* claim files left by dead processes are detected stale (dead pid) and
  broken — at boot by the sweep, and inline by the next acquirer.

The synthesis tasks here are deliberately slow (seeded inline CDFGs of
160-240 operations, ~0.5-1.5s each) so the SIGKILL reliably lands in
the middle of real work, not between jobs.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api.task import SynthesisTask
from repro.ir.analysis import critical_path_length
from repro.ir.serialize import to_dict
from repro.library import default_library
from repro.library.selection import MinPowerSelection, selection_delays
from repro.serve import Client, ClientError
from repro.serve.queue import DONE, RUNNING
from repro.serve.service import SynthesisService
from repro.store import claims, iter_journal_payloads
from repro.suite.generators import GeneratorConfig, random_cdfg

REPO_ROOT = Path(__file__).resolve().parents[2]


def slow_spec(seed: int, operations: int = 160, power: float = 60.0) -> dict:
    """A feasible inline-CDFG task slow enough to be killed mid-flight."""
    cdfg = random_cdfg(
        GeneratorConfig(
            operations=operations,
            inputs=4,
            levels=max(3, operations // 6),
            mul_fraction=0.3,
            sub_fraction=0.2,
            outputs=3,
            seed=seed,
        )
    )
    selection = MinPowerSelection().select(cdfg, default_library())
    latency = critical_path_length(cdfg, selection_delays(selection, cdfg)) + 8
    return {"graph": to_dict(cdfg), "latency": latency, "power_budget": power}


class TestWorkerChildCrash:
    def test_sigkilled_child_job_is_requeued_and_completes(self, tmp_path):
        with SynthesisService(tmp_path, workers=1) as service:
            (first_pid,) = service.worker_pids()
            jobs = service.submit_many(
                [SynthesisTask.from_dict(slow_spec(seed)) for seed in range(3)]
            )
            deadline = time.monotonic() + 30
            while not any(job.state == RUNNING for job in jobs):
                assert time.monotonic() < deadline, "no job ever started"
                time.sleep(0.005)
            time.sleep(0.1)  # let the child get properly into the synthesis
            os.kill(first_pid, signal.SIGKILL)

            service.wait(jobs, timeout=120)
            assert all(job.state == DONE for job in jobs)
            assert all(job.record["feasible"] for job in jobs)

            stats = service.stats()
            assert stats["worker_crashes"] >= 1
            assert sum(job.requeues for job in jobs) >= 1
            pids = service.worker_pids()
            assert pids and first_pid not in pids, "dead slot must respawn"

        journaled = [k for k, _ in iter_journal_payloads(service.cache.root)]
        assert sorted(journaled) == sorted(set(journaled))
        assert set(journaled) == {job.key for job in jobs}

    def test_crash_loop_fails_job_after_max_requeues(self, tmp_path):
        with SynthesisService(tmp_path, workers=1, max_requeues=1) as service:
            (job,) = service.submit_many(
                [SynthesisTask.from_dict(slow_spec(99, operations=240, power=80.0))]
            )
            crashes = 0
            deadline = time.monotonic() + 120
            while not job.finished and time.monotonic() < deadline:
                for pid in service.worker_pids():
                    try:
                        os.kill(pid, signal.SIGKILL)
                        crashes += 1
                    except ProcessLookupError:
                        pass
                time.sleep(0.3)
            assert job.finished
            assert job.state == "failed" and job.error_type == "WorkerCrash"
            assert crashes >= 2  # original attempt + the one allowed requeue
            # the poisoned job must not have produced an uncertified record
            assert service.result(job.key) is None


class _ServeProcess:
    """A real ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, state_dir, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--state-dir",
                str(state_dir),
                "--cache-dir",
                str(cache_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        self.url = self._read_url()

    def _read_url(self) -> str:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            if "listening on" in line:
                return line.rsplit(" ", 1)[-1].strip()
        raise AssertionError("repro serve never announced its address")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=15)


@pytest.mark.slow
class TestServiceProcessCrash:
    def test_sigkilled_service_replays_queue_and_completes_batch(self, tmp_path):
        state_dir = tmp_path / "state"
        cache_dir = tmp_path / "cache"
        batch = [slow_spec(seed) for seed in range(6)]

        first = _ServeProcess(state_dir, cache_dir)
        survivor = None
        try:
            client = Client(first.url, retries=0)
            accepted = client.submit(batch)
            assert len(accepted) == len(batch)

            # kill the whole service strictly mid-batch: some progress
            # made, some jobs still pending or in flight
            deadline = time.monotonic() + 120
            while True:
                assert time.monotonic() < deadline, "batch never progressed"
                states = [client.job(entry["id"])["state"] for entry in accepted]
                if any(s in (RUNNING, DONE) for s in states) and not all(
                    s == DONE for s in states
                ):
                    break
                time.sleep(0.01)
            first.sigkill()

            survivor = _ServeProcess(state_dir, cache_dir)
            client = Client(survivor.url, retries=0)
            final = client.wait(accepted, timeout=180)
            assert all(state["state"] == "done" for state in final)
            assert all(state["record"]["feasible"] for state in final)
            assert {state["id"] for state in final} == {
                entry["id"] for entry in accepted
            }

            # replay requeued the in-flight work rather than losing it
            stats = client.stats()
            assert stats["queue"]["jobs"].get("failed", 0) == 0

            # at most one synthesis per content address even across the
            # murdered first service and its successor
            journaled = [k for k, _ in iter_journal_payloads(cache_dir)]
            assert sorted(journaled) == sorted(set(journaled))
            assert set(journaled) == {entry["key"] for entry in accepted}

            # every served result is a certified record, none withheld
            for entry in accepted:
                assert client.result(entry["key"]).feasible
        finally:
            first.terminate()
            if survivor is not None:
                survivor.terminate()


class TestStaleClaimHygiene:
    def test_boot_sweep_breaks_dead_pid_claims(self, tmp_path):
        task = SynthesisTask(graph="hal", latency=17, power_budget=12.0)
        cache_dir = tmp_path / "cache"
        path = claims.claim_path(cache_dir, task.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        dead = claims.ClaimInfo(
            key=task.cache_key(),
            pid=2**22 + 1,  # beyond any live pid in the test container
            acquired_at=time.time(),
            lease=3600.0,
            owner="crashed-service",
        )
        path.write_bytes(dead.to_json().encode())

        from repro.explore import ResultCache

        with SynthesisService(
            tmp_path / "state", cache=ResultCache(cache_dir), workers=1
        ) as service:
            assert service.stats()["stale_claims_broken"] >= 1
            (job,) = service.submit_many([task])
            service.wait([job], timeout=60)
            assert job.state == DONE and job.record["feasible"]

    def test_inline_break_when_claim_goes_stale_mid_wait(self, tmp_path):
        # a claim planted *after* boot, holder already dead: the worker's
        # acquire loop must break it inline rather than waiting forever
        from repro.explore import ResultCache
        from repro.serve.workers import run_claimed_task

        task = SynthesisTask(graph="hal", latency=17, power_budget=10.0)
        cache = ResultCache(tmp_path / "cache")
        path = claims.claim_path(cache.root, task.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        dead = claims.ClaimInfo(
            key=task.cache_key(),
            pid=2**22 + 2,
            acquired_at=time.time(),
            lease=3600.0,
        )
        path.write_bytes(dead.to_json().encode())

        outcome = run_claimed_task(task, cache, claim_timeout=30.0)
        assert outcome["feasible"] is True
        assert claims.holder(cache.root, task.cache_key()) is None
