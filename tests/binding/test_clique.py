"""Unit tests for clique partitioning (greedy and exhaustive)."""

import pytest

from repro.binding.clique import (
    Clique,
    CliquePartition,
    area_saving_gain,
    exhaustive_clique_partition,
    greedy_clique_partition,
)
from repro.binding.compatibility import build_compatibility_graph
from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.scheduling.constraints import PowerConstraint, TimeConstraint
from repro.scheduling.mobility import compute_windows


def compatibility_for(cdfg, library, latency, power=50.0):
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    windows = compute_windows(
        cdfg, delays, powers, PowerConstraint(power), TimeConstraint(latency)
    )
    return build_compatibility_graph(cdfg, library, windows, delays)


def clique_cost(library):
    """Cost of a clique = area of the cheapest module able to host it."""

    def cost(clique: Clique) -> float:
        if clique.module is not None:
            return clique.module.area
        return 100.0  # singleton without module information

    return cost


class TestCliqueDataStructures:
    def test_clique_membership_and_merge(self):
        a = Clique(frozenset({"x"}))
        b = Clique(frozenset({"y", "z"}))
        merged = a.merged_with(b)
        assert merged.size == 3
        assert "y" in merged

    def test_partition_validity_checks(self, hal, library):
        compatibility = compatibility_for(hal, library, latency=24)
        singletons = CliquePartition(
            cliques=[Clique(frozenset({op})) for op in compatibility.operations()]
        )
        assert singletons.is_partition_of(compatibility.operations())
        assert singletons.is_valid(compatibility)

    def test_partition_detects_overlap(self):
        partition = CliquePartition(
            cliques=[Clique(frozenset({"a", "b"})), Clique(frozenset({"b"}))]
        )
        assert not partition.is_partition_of(["a", "b"])

    def test_clique_of(self):
        partition = CliquePartition(cliques=[Clique(frozenset({"a", "b"}))])
        assert partition.clique_of("a").members == frozenset({"a", "b"})
        assert partition.clique_of("zzz") is None


class TestGreedyPartition:
    def test_result_is_valid_partition(self, hal, library):
        compatibility = compatibility_for(hal, library, latency=24)
        partition = greedy_clique_partition(compatibility)
        assert partition.is_partition_of(compatibility.operations())
        assert partition.is_valid(compatibility)

    def test_sharing_happens_with_slack(self, hal, library):
        """With a loose latency the six multiplications must share units."""
        compatibility = compatibility_for(hal, library, latency=40)
        partition = greedy_clique_partition(compatibility)
        assert len(partition.cliques) < len(compatibility.operations())

    def test_no_sharing_without_compatibility(self, wide, library):
        """Independent multiplications with no slack cannot share any unit."""
        compatibility = compatibility_for(wide, library, latency=6)
        partition = greedy_clique_partition(compatibility)
        mult_cliques = [
            c for c in partition.cliques if any(m.startswith("m") for m in c.members)
        ]
        assert all(c.size == 1 for c in mult_cliques)

    def test_chained_multiplications_collapse_to_one_unit(self, chain, library):
        """Dependent multiplications are always compatible, so the greedy
        partition puts the whole chain on a single serial multiplier."""
        compatibility = compatibility_for(chain, library, latency=14)
        partition = greedy_clique_partition(compatibility)
        mult_clique = partition.clique_of("m1")
        assert mult_clique is not None
        assert {"m1", "m2", "m3"} <= set(mult_clique.members)

    def test_gain_function_can_forbid_merges(self, hal, library):
        compatibility = compatibility_for(hal, library, latency=40)
        partition = greedy_clique_partition(compatibility, gain=lambda a, b, mods: None)
        assert all(clique.size == 1 for clique in partition.cliques)

    def test_deterministic(self, cosine, library):
        compatibility = compatibility_for(cosine, library, latency=25)
        first = greedy_clique_partition(compatibility)
        second = greedy_clique_partition(compatibility)
        assert sorted(tuple(sorted(c.members)) for c in first.cliques) == sorted(
            tuple(sorted(c.members)) for c in second.cliques
        )

    def test_total_area_not_worse_than_singletons(self, hal, library):
        compatibility = compatibility_for(hal, library, latency=30)
        partition = greedy_clique_partition(compatibility)

        def area_of(clique):
            if clique.module is not None:
                return clique.module.area
            op = next(iter(clique.members))
            return library.cheapest(hal.operation(op).optype).area

        singleton_area = sum(
            library.cheapest(hal.operation(op).optype).area
            for op in compatibility.operations()
        )
        assert partition.total_area(area_of) <= singleton_area


class TestAreaSavingGain:
    def test_positive_saving_for_shared_module(self, library):
        add = library.module("add")
        a = Clique(frozenset({"x"}), module=add)
        b = Clique(frozenset({"y"}), module=add)
        assert area_saving_gain(a, b, [add]) == pytest.approx(add.area)

    def test_no_modules_forbids_merge(self):
        a = Clique(frozenset({"x"}))
        b = Clique(frozenset({"y"}))
        assert area_saving_gain(a, b, []) is None


class TestExhaustivePartition:
    def test_matches_or_beats_greedy_on_small_graph(self, diamond, library):
        compatibility = compatibility_for(diamond, library, latency=12)

        def cost(clique):
            if clique.module is not None:
                return clique.module.area
            op = next(iter(clique.members))
            return library.cheapest(diamond.operation(op).optype).area

        greedy = greedy_clique_partition(compatibility)
        optimal = exhaustive_clique_partition(compatibility, cost)
        assert optimal.is_valid(compatibility)
        assert optimal.total_area(cost) <= greedy.total_area(cost) + 1e-9

    def test_size_guard(self, cosine, library):
        compatibility = compatibility_for(cosine, library, latency=25)
        with pytest.raises(ValueError):
            exhaustive_clique_partition(compatibility, lambda c: 1.0, max_operations=5)
