"""Launch-order priors for portfolio races, mined from the result store.

Every record the cache files carries the indexed columns a race cares
about — ``family``, ``scheduler``, ``binder``, ``feasible``, ``elapsed``
and the (T, P, R) constraint axes — so the store doubles as training
data: :func:`mine_priors` runs one :meth:`~repro.store.base.ResultStore.scan`
over those columns and folds each row into per-(family, constraint-bucket)
win/latency statistics.  :meth:`Priors.rank` then reorders a race's
candidate strategy pairs so the historically-best pair launches first.

Priors are deliberately *advisory*: they permute launch order only.  The
portfolio runner's decision rule (see :mod:`repro.portfolio.runner`) is
canonical — the same completions produce the same winner regardless of
the order they were launched in — so stale or misleading priors cost
time, never correctness.

Constraint buckets are power-of-two: a latency bound of 17 lands in
``T16``, a power budget of 12.0 in ``P8``, an unbounded axis in ``T-`` /
``P-`` / ``R-``.  Rows also accumulate into a family-wide ``*`` bucket
and a global one, which :meth:`Priors.rank` falls back to when the exact
bucket has no evidence yet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .base import ResultStore, StoreQuery

__all__ = [
    "PairPrior",
    "Priors",
    "constraint_bucket",
    "mine_priors",
    "pair_label",
]

#: Schedulers that bind while scheduling — their pair label is the bare
#: scheduler name (mirrors ``repro.verify.differential.SELF_BINDING_SCHEDULERS``).
SELF_BINDING = ("engine",)

#: Bucket label for a family-wide (any-constraint) aggregate.
ANY_BUCKET = "*"


def pair_label(scheduler: str, binder: str) -> str:
    """Canonical display/statistics label of one (scheduler, binder) pair.

    Self-binding schedulers (``engine``) label as the bare scheduler name;
    every two-phase pair labels as ``"<scheduler>+<binder>"``.  This is
    the currency shared by :meth:`Priors.rank`, the portfolio config and
    the ``winner`` field on portfolio records.
    """
    if scheduler in SELF_BINDING:
        return scheduler
    return f"{scheduler}+{binder}"


def _axis_bucket(tag: str, value: Optional[float]) -> str:
    if value is None:
        return f"{tag}-"
    value = float(value)
    if value <= 1.0:
        return f"{tag}1"
    return f"{tag}{2 ** int(math.floor(math.log2(value)))}"


def constraint_bucket(
    latency: Optional[int],
    power_budget: Optional[float],
    register_budget: Optional[int],
) -> str:
    """The power-of-two bucket label of one (T, P, R) constraint point.

    ``constraint_bucket(17, 12.0, None)`` is ``"T16|P8|R-"``: tight
    enough that priors distinguish constraint regimes (an unbounded-power
    race and a starved one have different winners), coarse enough that a
    handful of sweeps populates the bucket.
    """
    return "|".join(
        (
            _axis_bucket("T", latency),
            _axis_bucket("P", power_budget),
            _axis_bucket("R", register_budget),
        )
    )


@dataclass
class PairPrior:
    """Accumulated evidence for one strategy pair in one constraint bucket.

    Attributes:
        races: Rows observed (feasible or not).
        wins: Rows that were certified feasible.
        elapsed_total: Summed synthesis seconds across all observed rows.
    """

    races: int = 0
    wins: int = 0
    elapsed_total: float = 0.0

    def observe(self, feasible: bool, elapsed: float) -> None:
        """Fold one stored row into the statistics."""
        self.races += 1
        if feasible:
            self.wins += 1
        self.elapsed_total += max(0.0, float(elapsed))

    @property
    def win_rate(self) -> float:
        """Fraction of observed rows that were feasible (0.0 when unseen)."""
        return self.wins / self.races if self.races else 0.0

    @property
    def mean_elapsed(self) -> float:
        """Mean synthesis seconds per observed row (0.0 when unseen)."""
        return self.elapsed_total / self.races if self.races else 0.0

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe form (what ``repro priors show`` prints)."""
        return {
            "races": self.races,
            "wins": self.wins,
            "win_rate": self.win_rate,
            "mean_elapsed": self.mean_elapsed,
        }


@dataclass
class Priors:
    """Per-(family, constraint-bucket) win/latency statistics for races.

    ``table`` maps ``(family, bucket)`` scopes to per-pair-label
    :class:`PairPrior` entries.  Three scopes accumulate per row: the
    exact ``(family, bucket)``, the family-wide ``(family, "*")`` and the
    global ``("", "*")`` — :meth:`rank` uses the most specific scope that
    has evidence for any candidate pair.
    """

    table: Dict[Tuple[str, str], Dict[str, PairPrior]] = field(default_factory=dict)

    def observe(
        self,
        family: str,
        bucket: str,
        pair: str,
        *,
        feasible: bool,
        elapsed: float,
    ) -> None:
        """Fold one observation into the exact, family-wide and global scopes."""
        for scope in ((family, bucket), (family, ANY_BUCKET), ("", ANY_BUCKET)):
            self.table.setdefault(scope, {}).setdefault(pair, PairPrior()).observe(
                feasible, elapsed
            )

    def scope_for(
        self, family: str, bucket: str, pairs: Sequence[str]
    ) -> Optional[Dict[str, PairPrior]]:
        """The most specific scope with evidence for any candidate pair."""
        for scope in ((family, bucket), (family, ANY_BUCKET), ("", ANY_BUCKET)):
            stats = self.table.get(scope)
            if stats and any(pair in stats for pair in pairs):
                return stats
        return None

    def rank(
        self,
        pairs: Sequence[str],
        *,
        family: str = "",
        latency: Optional[int] = None,
        power_budget: Optional[float] = None,
        register_budget: Optional[int] = None,
    ) -> List[str]:
        """Reorder candidate pair labels into prior-ranked launch order.

        Pairs with evidence sort by descending win rate, then ascending
        mean elapsed (fast reliable winners first); unseen pairs keep
        their given relative order at the end.  The result is always a
        permutation of ``pairs`` — ranking never adds or removes a
        candidate, so it can only change *when* a contender launches,
        never *whether* it races.
        """
        ordered = list(pairs)
        stats = self.scope_for(
            family, constraint_bucket(latency, power_budget, register_budget), ordered
        )
        if stats is None:
            return ordered

        def sort_key(item: Tuple[int, str]):
            index, pair = item
            prior = stats.get(pair)
            if prior is None or not prior.races:
                return (1, 0.0, 0.0, index)
            return (0, -prior.win_rate, prior.mean_elapsed, index)

        return [pair for _, pair in sorted(enumerate(ordered), key=sort_key)]

    @property
    def is_empty(self) -> bool:
        """True when no rows were mined (ranking is then the identity)."""
        return not self.table

    def to_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """JSON-safe nested form: ``{"family|bucket": {pair: stats}}``."""
        return {
            f"{family}|{bucket}": {
                pair: prior.to_dict() for pair, prior in sorted(stats.items())
            }
            for (family, bucket), stats in sorted(self.table.items())
        }


def mine_priors(
    store: ResultStore,
    *,
    family: Optional[str] = None,
    query: Optional[StoreQuery] = None,
) -> Priors:
    """Scan the store's indexed columns into portfolio launch priors.

    One :meth:`~repro.store.base.ResultStore.scan` over the scalar
    columns — no record blobs are deserialized.  Rows filed by the
    ``portfolio`` meta-strategy itself are skipped so priors never feed
    back on their own verdicts; rows without a scheduler (malformed) are
    skipped too.  ``family`` narrows the scan server-side; ``query``
    replaces the filter entirely for callers that want e.g. a
    ``key_prefix``-pruned sample.
    """
    priors = Priors()
    if query is None:
        query = StoreQuery(family=family) if family is not None else StoreQuery()
    for row in store.scan(query):
        if not row.scheduler or row.scheduler == "portfolio":
            continue
        priors.observe(
            row.family,
            constraint_bucket(row.latency, row.power_budget, row.register_budget),
            pair_label(row.scheduler, row.binder),
            feasible=row.feasible,
            elapsed=row.elapsed,
        )
    return priors
