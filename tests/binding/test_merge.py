"""Unit tests for binding-decision scoring."""

from repro.binding.merge import BindingDecision, better
from repro.library.library import default_library

LIB = default_library()
ADD = LIB.module("add")
ALU = LIB.module("ALU")
MULT = LIB.module("Mult (ser.)")


def decision(**overrides):
    base = dict(
        op_name="op",
        module=ADD,
        instance_name=None,
        start_time=0,
        area_increase=ADD.area,
        interconnect_penalty=0,
        mobility_loss=0,
    )
    base.update(overrides)
    return BindingDecision(**base)


class TestSortKey:
    def test_sharing_beats_allocating(self):
        share = decision(instance_name="add#0", area_increase=0.0)
        allocate = decision(area_increase=ADD.area)
        assert better(share, allocate) is share

    def test_smaller_area_wins(self):
        small = decision(module=ADD, area_increase=ADD.area)
        large = decision(module=ALU, area_increase=ALU.area)
        assert better(small, large) is small

    def test_interconnect_breaks_area_ties(self):
        clean = decision(instance_name="a#0", area_increase=0.0, interconnect_penalty=0)
        messy = decision(instance_name="b#0", area_increase=0.0, interconnect_penalty=3)
        assert better(clean, messy) is clean

    def test_mobility_breaks_further_ties(self):
        keep = decision(instance_name="a#0", area_increase=0.0, mobility_loss=0)
        lose = decision(instance_name="b#0", area_increase=0.0, mobility_loss=4)
        assert better(keep, lose) is keep

    def test_earlier_start_preferred_last(self):
        early = decision(instance_name="a#0", area_increase=0.0, start_time=1)
        late = decision(instance_name="b#0", area_increase=0.0, start_time=5)
        assert better(early, late) is early

    def test_effective_area_overrides_raw_area(self):
        # A big module amortized over many operations can beat a small one.
        amortized = decision(module=MULT, area_increase=MULT.area, effective_area=25.0)
        raw = decision(module=ADD, area_increase=ADD.area)
        assert better(amortized, raw) is amortized

    def test_deterministic_total_order(self):
        a = decision(op_name="a")
        b = decision(op_name="b")
        assert better(a, b) is a
        assert better(b, a) is a


class TestDescribe:
    def test_share_description(self):
        d = decision(instance_name="ALU#1", area_increase=0.0, start_time=3)
        text = d.describe()
        assert "ALU#1" in text and "cycle 3" in text
        assert d.shares_instance

    def test_new_instance_description(self):
        d = decision()
        assert "new add" in d.describe()
        assert not d.shares_instance
