"""Constraint objects for scheduling and synthesis.

The paper's synthesis problem is constrained by:

* a **time constraint** ``T`` — all operations must finish within ``T``
  clock cycles, and
* a **maximum power per clock cycle** ``P`` — the sum of the per-cycle
  power of all operations executing in any single cycle must not exceed
  ``P``.

A :class:`ResourceConstraint` (maximum number of FU instances per module)
is additionally provided for the list-scheduling baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..library.module import FUModule


class ConstraintError(Exception):
    """Raised for malformed or mutually impossible constraints."""


class UnsupportedConstraintError(ConstraintError):
    """A constraint was given to a strategy that cannot guarantee it.

    Raised instead of silently dropping the constraint — e.g. a
    ``register_budget`` on a scheduler without register-pressure support.
    """


@dataclass(frozen=True)
class TimeConstraint:
    """Latency bound: every operation must finish by cycle ``latency``."""

    latency: int

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ConstraintError(f"latency must be positive, got {self.latency}")

    def satisfied_by(self, finish_time: int) -> bool:
        """True if a schedule finishing at ``finish_time`` meets the bound."""
        return finish_time <= self.latency


@dataclass(frozen=True)
class PowerConstraint:
    """Maximum power that may be drawn in any single clock cycle.

    ``PowerConstraint.unbounded()`` represents "no power constraint", used
    for baselines and for the loose end of the Figure-2 sweep.
    """

    max_power: float
    #: Numerical tolerance when comparing accumulated float power values.
    tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.max_power <= 0:
            raise ConstraintError(f"max power must be positive, got {self.max_power}")
        if self.tolerance < 0:
            raise ConstraintError("tolerance must be non-negative")

    @staticmethod
    def unbounded() -> "PowerConstraint":
        """A constraint no realistic schedule can violate."""
        return PowerConstraint(math.inf)

    @property
    def is_unbounded(self) -> bool:
        return math.isinf(self.max_power)

    def allows(self, cycle_power: float) -> bool:
        """True if ``cycle_power`` fits within the budget (with tolerance)."""
        return cycle_power <= self.max_power + self.tolerance

    def headroom(self, cycle_power: float) -> float:
        """Remaining budget in a cycle already drawing ``cycle_power``."""
        return self.max_power - cycle_power


@dataclass(frozen=True)
class ResourceConstraint:
    """Maximum number of simultaneously usable instances per module.

    Modules absent from ``limits`` are unlimited.
    """

    limits: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, count in self.limits.items():
            if count < 0:
                raise ConstraintError(f"negative instance limit for {name!r}")

    def limit_for(self, module: FUModule) -> Optional[int]:
        """Instance limit for ``module`` or ``None`` when unlimited."""
        return self.limits.get(module.name)

    @staticmethod
    def unlimited() -> "ResourceConstraint":
        return ResourceConstraint({})


@dataclass(frozen=True)
class SynthesisConstraints:
    """Bundle of the constraints the combined synthesis honours.

    ``register_budget`` (``None`` = unbounded) caps the number of
    simultaneously live values; only register-aware schedulers can
    guarantee it, and the certificate checker verifies it independently.
    """

    time: TimeConstraint
    power: PowerConstraint = field(default_factory=PowerConstraint.unbounded)
    resources: ResourceConstraint = field(default_factory=ResourceConstraint.unlimited)
    register_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.register_budget is not None and self.register_budget <= 0:
            raise ConstraintError(
                f"register budget must be positive, got {self.register_budget}"
            )

    @staticmethod
    def of(
        latency: int,
        max_power: Optional[float] = None,
        register_budget: Optional[int] = None,
    ) -> "SynthesisConstraints":
        """Convenience constructor from plain numbers."""
        power = PowerConstraint(max_power) if max_power is not None else PowerConstraint.unbounded()
        return SynthesisConstraints(
            TimeConstraint(latency), power, register_budget=register_budget
        )


def feasible_power_floor(total_energy: float, latency: int) -> float:
    """The smallest power budget that could possibly admit a schedule.

    With total energy ``E`` spread over at most ``T`` cycles, some cycle
    must draw at least ``E / T``; any ``P`` below that is infeasible
    regardless of the schedule.  Individual operations additionally need
    their own per-cycle power, so callers usually take the max of this
    floor and the largest single-operation power.
    """
    if latency <= 0:
        raise ConstraintError("latency must be positive")
    if total_energy < 0:
        raise ConstraintError("total energy must be non-negative")
    return total_energy / latency


def minimum_feasible_power(
    per_op_power: Mapping[str, float],
    per_op_delay: Mapping[str, int],
    latency: int,
) -> float:
    """Lower bound on the power budget for a specific operation set.

    Combines the energy floor with the largest single-operation per-cycle
    power (an operation can never be split across a budget smaller than
    its own draw).
    """
    total_energy = sum(per_op_power[op] * per_op_delay.get(op, 1) for op in per_op_power)
    floor = feasible_power_floor(total_energy, latency)
    single = max(per_op_power.values(), default=0.0)
    return max(floor, single)
