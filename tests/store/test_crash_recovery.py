"""Crash-recovery tests: torn appends, interrupted compactions.

Each test manufactures the exact on-disk state a crash leaves behind —
a half-written frame at the segment tail, a leftover ``.tmp`` from a
compaction that died before ``os.replace``, a ``consumed-*.seg`` whose
compaction never finished — and asserts a fresh store instance recovers
every durable record.
"""

import os

from repro.store import ColumnarStore, StoreQuery
from repro.store.format import FRAME_MAGIC

from .conftest import fill, make_payload


def shard_dirs(store):
    root = store.root / "shards"
    return sorted(p for p in root.iterdir() if p.is_dir()) if root.is_dir() else []


def torn_shards(store):
    """Append garbage to every shard's live segment; return how many."""
    torn = 0
    for shard in shard_dirs(store):
        seg = shard / "append.seg"
        if seg.exists():
            with open(seg, "ab") as handle:
                handle.write(FRAME_MAGIC + b"\x40\x00\x00\x00half-a-frame")
            torn += 1
    return torn


class TestTornAppend:
    def test_torn_tail_loses_only_the_torn_frame(self, columnar):
        expected = fill(columnar, 20)
        assert torn_shards(columnar) > 0
        reopened = ColumnarStore(columnar.root)
        assert reopened.count() == 20
        for key in expected:
            assert reopened.get(key) is not None

    def test_truncated_mid_frame_tail_is_dropped(self, columnar):
        expected = fill(columnar, 20)
        clipped = 0
        lost_keys = set(expected)
        for shard in shard_dirs(columnar):
            seg = shard / "append.seg"
            size = seg.stat().st_size
            # chop into the *last* frame: every earlier frame stays valid
            with open(seg, "rb+") as handle:
                handle.truncate(size - 7)
            clipped += 1
        assert clipped > 0
        reopened = ColumnarStore(columnar.root)
        survivors = set(reopened.keys())
        # exactly one frame per clipped shard is gone, none others
        assert len(survivors) == 20 - clipped
        assert survivors < lost_keys

    def test_writer_repairs_torn_tail_before_appending(self, columnar):
        fill(columnar, 20)
        torn_shards(columnar)
        writer = ColumnarStore(columnar.root)
        key, payload = make_payload(1000)
        writer.put(key, payload)  # repairs that shard's tail, then appends
        assert writer.get(key) is not None
        assert writer.count() == 21

    def test_compaction_after_torn_tail_keeps_all_valid_frames(self, columnar):
        expected = fill(columnar, 20)
        torn_shards(columnar)
        reopened = ColumnarStore(columnar.root)
        report = reopened.compact()
        assert report["compacted"] == 20
        assert set(reopened.keys()) == set(expected)


class TestInterruptedCompaction:
    def test_leftover_tmp_is_ignored_and_cleaned(self, columnar):
        expected = fill(columnar, 10)
        # a compaction that died before os.replace leaves only a .tmp
        for shard in shard_dirs(columnar):
            (shard / "compact-00000000.col.tmp").write_bytes(b"torn compacted write")
        reopened = ColumnarStore(columnar.root)
        assert set(reopened.keys()) == set(expected)
        reopened.compact()
        for shard in shard_dirs(reopened):
            assert not list(shard.glob("*.tmp"))
        assert set(ColumnarStore(columnar.root).keys()) == set(expected)

    def test_crash_after_rotation_loses_nothing(self, columnar):
        """Rotation happened, merge never did: consumed-*.seg sticks around."""
        expected = fill(columnar, 10)
        rotated = 0
        for shard in shard_dirs(columnar):
            seg = shard / "append.seg"
            if seg.exists():
                os.rename(seg, shard / "consumed-00000000.seg")
                rotated += 1
        assert rotated > 0
        reopened = ColumnarStore(columnar.root)
        assert set(reopened.keys()) == set(expected)
        # and the *next* compaction merges the leftovers durably
        report = reopened.compact()
        assert report["compacted"] == 10
        for shard in shard_dirs(reopened):
            assert not list(shard.glob("consumed-*.seg"))
        assert set(ColumnarStore(columnar.root).keys()) == set(expected)

    def test_crash_before_old_generation_removal(self, columnar):
        """Both generations present: the newest valid one wins."""
        expected = fill(columnar, 10)
        columnar.compact()
        key, payload = make_payload(50)
        columnar.put(key, payload)
        store2 = ColumnarStore(columnar.root)
        store2.compact()
        # resurrect the state where gen N survived next to gen N+1
        for shard in shard_dirs(store2):
            gens = sorted(shard.glob("compact-*.col"))
            if gens:
                stale = shard / "compact-00000000.col"
                if not stale.exists():
                    stale.write_bytes(b"stale but never read: gen 1 is newer")
        reopened = ColumnarStore(columnar.root)
        assert set(reopened.keys()) == set(expected) | {key}

    def test_corrupt_newest_generation_falls_back(self, columnar):
        """A torn generation file is skipped for the newest older one."""
        expected = fill(columnar, 10)
        columnar.compact()
        for shard in shard_dirs(columnar):
            for gen in shard.glob("compact-*.col"):
                # fake a *newer* generation that is unreadable garbage
                (shard / "compact-00000099.col").write_bytes(b"\x00" * 32)
        reopened = ColumnarStore(columnar.root)
        assert set(reopened.keys()) == set(expected)
        for key in expected:
            assert reopened.get(key) is not None

    def test_queries_survive_every_crash_state(self, columnar):
        for index in range(10):
            key, payload = make_payload(index, family="hal", power=10.0 + index)
            columnar.put(key, payload)
        columnar.compact()
        for index in range(10, 14):
            key, payload = make_payload(index, family="fir", power=25.0)
            columnar.put(key, payload)
        torn_shards(columnar)
        for shard in shard_dirs(columnar):
            (shard / "compact-00000050.col.tmp").write_bytes(b"garbage")
        reopened = ColumnarStore(columnar.root)
        assert len(list(reopened.scan(StoreQuery(family="fir")))) == 4
        assert len(list(reopened.scan(StoreQuery(power=(10.0, 19.0))))) == 10
