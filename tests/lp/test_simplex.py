"""Hand-checked LPs for the exact bounded-variable simplex."""

from fractions import Fraction

from repro.lp.model import LESS, GREATER, EQUAL, LinearProgram
from repro.lp.simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, solve_lp


def test_two_variable_maximization():
    # max x + y  s.t.  x + 2y <= 4, x <= 3  (as min of the negation).
    # Optimum at the vertex x=3, y=1/2 with value 7/2.
    lp = LinearProgram()
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    lp.add_constraint({x: 1, y: 2}, LESS, 4)
    lp.add_constraint({x: 1}, LESS, 3)
    lp.set_objective({x: -1, y: -1})
    solution = solve_lp(lp)
    assert solution.status == OPTIMAL
    assert solution.objective == Fraction(-7, 2)
    assert solution.values == [Fraction(3), Fraction(1, 2)]


def test_fractional_optimum_is_exact():
    # min x s.t. 3x >= 1: the answer is exactly 1/3, no tolerance involved.
    lp = LinearProgram()
    x = lp.add_variable("x")
    lp.add_constraint({x: 3}, GREATER, 1)
    lp.set_objective({x: 1})
    solution = solve_lp(lp)
    assert solution.status == OPTIMAL
    assert solution.values[0] == Fraction(1, 3)


def test_equality_row():
    # x + y == 5 with y <= 3: minimizing x lands on x=2 exactly.
    lp = LinearProgram()
    x = lp.add_variable("x")
    y = lp.add_variable("y", upper=3)
    lp.add_constraint({x: 1, y: 1}, EQUAL, 5)
    lp.set_objective({x: 1})
    solution = solve_lp(lp)
    assert solution.status == OPTIMAL
    assert solution.values == [Fraction(2), Fraction(3)]


def test_infeasible_is_a_proof():
    lp = LinearProgram()
    x = lp.add_variable("x", upper=1)
    lp.add_constraint({x: 1}, GREATER, 2)
    lp.set_objective({x: 1})
    assert solve_lp(lp).status == INFEASIBLE


def test_unbounded_detected():
    lp = LinearProgram()
    x = lp.add_variable("x")
    lp.set_objective({x: -1})
    assert solve_lp(lp).status == UNBOUNDED


def test_bound_overrides_restrict_without_copying():
    # The branch-and-bound subproblem mechanism: the same program solved
    # under tightened per-variable boxes.
    lp = LinearProgram()
    x = lp.add_variable("x", upper=10)
    lp.set_objective({x: -1})  # maximize x
    free = solve_lp(lp)
    assert free.values[0] == Fraction(10)
    pinned = solve_lp(lp, {x: (Fraction(0), Fraction(4))})
    assert pinned.values[0] == Fraction(4)
    empty = solve_lp(lp, {x: (Fraction(5), Fraction(4))})
    assert empty.status == INFEASIBLE


def test_negative_rhs_row_needs_phase_one():
    # -x <= -2 (i.e. x >= 2) forces an artificial start; phase 1 must
    # drive it out and phase 2 still find the exact optimum.
    lp = LinearProgram()
    x = lp.add_variable("x", upper=5)
    lp.add_constraint({x: -1}, LESS, -2)
    lp.set_objective({x: 1})
    solution = solve_lp(lp)
    assert solution.status == OPTIMAL
    assert solution.values[0] == Fraction(2)


def test_degenerate_vertex_terminates():
    # Several redundant rows meeting at one vertex: Bland's fallback must
    # prevent cycling and still return the optimum.
    lp = LinearProgram()
    x = lp.add_variable("x")
    y = lp.add_variable("y")
    lp.add_constraint({x: 1, y: 1}, LESS, 1)
    lp.add_constraint({x: 1}, LESS, 1)
    lp.add_constraint({y: 1}, LESS, 1)
    lp.add_constraint({x: 2, y: 2}, LESS, 2)
    lp.set_objective({x: -1, y: -1})
    solution = solve_lp(lp)
    assert solution.status == OPTIMAL
    assert solution.objective == Fraction(-1)


def test_fixed_variables_are_honoured():
    lp = LinearProgram()
    x = lp.add_variable("x", lower=3, upper=3)
    y = lp.add_variable("y", upper=10)
    lp.add_constraint({x: 1, y: 1}, LESS, 5)
    lp.set_objective({y: -1})
    solution = solve_lp(lp)
    assert solution.values == [Fraction(3), Fraction(2)]
