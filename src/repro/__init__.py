"""repro — power-constrained high-level synthesis of battery-powered systems.

A from-scratch reproduction of Nielsen & Madsen, *"Power Constrained
High-Level Synthesis of Battery Powered Digital Systems"* (DATE 2003).

The package provides:

* :mod:`repro.ir` — the CDFG intermediate representation,
* :mod:`repro.library` — the functional-unit library (the paper's Table 1),
* :mod:`repro.scheduling` — classical schedulers plus the paper's
  power-constrained pasap/palap,
* :mod:`repro.binding` — compatibility graphs, clique partitioning,
  register allocation and interconnect estimation,
* :mod:`repro.synthesis` — the combined power-constrained synthesis
  engine, baselines and design-space exploration,
* :mod:`repro.power` — power profiles, spike analysis and a battery model,
* :mod:`repro.datapath` — the synthesized RTL datapath and its area model,
* :mod:`repro.suite` — the hal/cosine/elliptic benchmark CDFGs and more,
* :mod:`repro.reporting` — the experiment drivers reproducing the paper's
  Table 1, Figure 1 and Figure 2.

* :mod:`repro.api` — the unified ``SynthesisTask`` / ``Pipeline`` /
  ``run_batch`` entry points tying everything together, with string-keyed
  strategy registries in :mod:`repro.registries`,
* :mod:`repro.explore` — the exploration subsystem: a content-addressed
  on-disk result cache and the adaptive power/area frontier refiner,
* :mod:`repro.verify` — the verification subsystem: from-scratch
  certificate checking of any result, differential cross-checking of
  every registered strategy pair and the seeded ``repro fuzz`` harness,
* :mod:`repro.serve` — the serving layer: a dependency-free HTTP
  synthesis service (persistent job queue, worker pool, shared result
  cache, certified results only) plus the blocking ``Client`` that
  ``repro submit`` uses,
* :mod:`repro.lp` — a zero-dependency exact LP/ILP core (rational
  simplex + branch-and-bound) and the time-indexed ``ilp`` scheduling
  strategy: a second exact oracle without the exhaustive search's size
  cap, and the only scheduler honouring a task's ``register_budget``,
* :mod:`repro.portfolio` — the ``portfolio`` racing meta-strategy: fan
  one task across a configurable strategy subset, return the
  canonically-first certified result (or the best-area one under a
  deadline), cancel the losers, and learn launch-order priors from the
  result store (see :mod:`repro.store.priors`).

Quickstart::

    from repro import SynthesisTask, run_task

    record = run_task(SynthesisTask(graph="hal", latency=17, power_budget=12.0))
    print(record.result.describe())

or, batched across cores::

    from repro import Sweep

    records = Sweep("hal", 17, [8, 10, 12, 15, 20]).run(jobs=4)
"""

from .ir import CDFG, CDFGBuilder, Operation, OpType
from .library import FULibrary, FUModule, default_library
from .scheduling import (
    PowerConstraint,
    Schedule,
    SynthesisConstraints,
    TimeConstraint,
    asap_schedule_with_library,
    pasap_schedule_with_library,
)
from .synthesis import (
    EngineOptions,
    PowerConstrainedSynthesizer,
    SynthesisResult,
    naive_synthesis,
    synthesize,
    time_constrained_synthesis,
)
from .power import BatteryParameters, PowerProfile, estimate_lifetime
from .suite import (
    ar_cdfg,
    build_benchmark,
    cosine_cdfg,
    elliptic_cdfg,
    fir_cdfg,
    hal_cdfg,
    register_benchmark,
)
from .registries import (
    BINDERS,
    LIBRARIES,
    SCHEDULERS,
    SELECTORS,
    StrategyRegistry,
    UnknownStrategyError,
)
from .api import (
    BatchResults,
    BatchSummary,
    Pipeline,
    PipelineContext,
    Sweep,
    SynthesisTask,
    TaskResult,
    run_batch,
    run_task,
)
from .explore import ResultCache, adaptive_power_sweep, iter_journal
from .store import (
    Claim,
    ColumnarStore,
    LegacyStore,
    Priors,
    ResultStore,
    StoreQuery,
    StoredRow,
    break_stale_claims,
    constraint_bucket,
    migrate_store,
    mine_priors,
    open_store,
    try_acquire,
)
from .portfolio import (
    PortfolioConfig,
    PortfolioOutcome,
    PortfolioRunner,
    portfolio_task,
    run_portfolio,
)
from .verify import (
    CertificateError,
    CertificateReport,
    FuzzConfig,
    Violation,
    check_certificate,
    cross_check,
    run_fuzz,
)
from .serve import (
    Client,
    QueueFullError,
    SynthesisService,
    WorkerCrash,
    start_server,
)
from .lp import (
    LinearProgram,
    ilp_schedule,
    minimum_registers,
    schedule_register_usage,
    solve_lp,
    solve_milp,
)

__version__ = "1.8.0"

__all__ = [
    "CDFG",
    "CDFGBuilder",
    "Operation",
    "OpType",
    "FULibrary",
    "FUModule",
    "default_library",
    "PowerConstraint",
    "Schedule",
    "SynthesisConstraints",
    "TimeConstraint",
    "asap_schedule_with_library",
    "pasap_schedule_with_library",
    "EngineOptions",
    "PowerConstrainedSynthesizer",
    "SynthesisResult",
    "naive_synthesis",
    "synthesize",
    "time_constrained_synthesis",
    "BatteryParameters",
    "PowerProfile",
    "estimate_lifetime",
    "ar_cdfg",
    "build_benchmark",
    "cosine_cdfg",
    "elliptic_cdfg",
    "fir_cdfg",
    "hal_cdfg",
    "register_benchmark",
    "StrategyRegistry",
    "UnknownStrategyError",
    "SCHEDULERS",
    "BINDERS",
    "SELECTORS",
    "LIBRARIES",
    "SynthesisTask",
    "Pipeline",
    "PipelineContext",
    "TaskResult",
    "BatchResults",
    "BatchSummary",
    "Sweep",
    "run_task",
    "run_batch",
    "ResultCache",
    "adaptive_power_sweep",
    "iter_journal",
    "ResultStore",
    "ColumnarStore",
    "LegacyStore",
    "StoreQuery",
    "StoredRow",
    "open_store",
    "migrate_store",
    "Claim",
    "try_acquire",
    "break_stale_claims",
    "Priors",
    "mine_priors",
    "constraint_bucket",
    "PortfolioConfig",
    "PortfolioOutcome",
    "PortfolioRunner",
    "portfolio_task",
    "run_portfolio",
    "CertificateError",
    "CertificateReport",
    "Violation",
    "check_certificate",
    "cross_check",
    "run_fuzz",
    "FuzzConfig",
    "SynthesisService",
    "start_server",
    "Client",
    "QueueFullError",
    "WorkerCrash",
    "LinearProgram",
    "solve_lp",
    "solve_milp",
    "ilp_schedule",
    "minimum_registers",
    "schedule_register_usage",
    "__version__",
]
