"""Tests for the store-level single-flight claim protocol.

The unit half exercises the state machine directly: acquire/release,
dead-pid and lease staleness, the byte-compare breaking rule, the boot
sweep.  The property half is a seeded multiprocess interleaving test:
workers race to claim one key, hold it, and randomly *crash while
holding* — across every interleaving there must never be two live
holders inside the critical section at once, and a crashed holder's
claim must always be recoverable by dead-pid breaking alone (the lease
is set far too long to help).
"""

import json
import multiprocessing
import os
import random
import time
from pathlib import Path

import pytest

from repro.store import claims
from repro.store.claims import (
    Claim,
    ClaimInfo,
    break_stale_claims,
    claim_path,
    holder,
    pid_is_dead,
    try_acquire,
)

KEY = "ab" + "0" * 62


def plant_claim(root, key, *, pid, age=0.0, lease=claims.DEFAULT_LEASE) -> Path:
    """Write a claim file directly (simulating another process's claim)."""
    path = claim_path(root, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    info = ClaimInfo(
        key=key, pid=pid, acquired_at=time.time() - age, lease=lease, nonce="t"
    )
    path.write_bytes(info.to_json().encode())
    return path


@pytest.fixture()
def dead_pid():
    """A pid that provably belonged to an exited process."""
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    assert pid_is_dead(proc.pid)
    return proc.pid


class TestAcquireRelease:
    def test_acquire_then_conflict_then_release(self, tmp_path):
        claim = try_acquire(tmp_path, KEY, owner="first")
        assert isinstance(claim, Claim) and claim.key == KEY
        assert try_acquire(tmp_path, KEY) is None  # held (we are alive)
        info = holder(tmp_path, KEY)
        assert info.pid == os.getpid() and info.owner == "first"
        claim.release()
        assert holder(tmp_path, KEY) is None
        assert try_acquire(tmp_path, KEY) is not None

    def test_release_is_idempotent_and_survives_breaking(self, tmp_path):
        claim = try_acquire(tmp_path, KEY)
        os.unlink(claim.path)  # someone broke us
        claim.release()
        claim.release()

    def test_context_manager_releases(self, tmp_path):
        with try_acquire(tmp_path, KEY) as claim:
            assert holder(tmp_path, KEY) is not None
        assert holder(tmp_path, KEY) is None
        assert claim._released

    def test_no_temp_file_litter(self, tmp_path):
        try_acquire(tmp_path, KEY).release()
        blocked = plant_claim(tmp_path, KEY, pid=os.getpid())
        assert try_acquire(tmp_path, KEY) is None
        leftovers = [
            p for p in blocked.parent.iterdir() if p.name.startswith(".tmp-")
        ]
        assert leftovers == []


class TestStaleness:
    def test_dead_pid_claim_is_broken_and_taken(self, tmp_path, dead_pid):
        plant_claim(tmp_path, KEY, pid=dead_pid)
        claim = try_acquire(tmp_path, KEY)
        assert claim is not None
        assert holder(tmp_path, KEY).pid == os.getpid()
        claim.release()

    def test_expired_lease_claim_is_broken_even_with_live_pid(self, tmp_path):
        plant_claim(tmp_path, KEY, pid=os.getpid(), age=100.0, lease=1.0)
        assert try_acquire(tmp_path, KEY) is not None

    def test_live_claim_within_lease_is_respected(self, tmp_path):
        plant_claim(tmp_path, KEY, pid=os.getpid(), age=1.0, lease=600.0)
        assert try_acquire(tmp_path, KEY) is None

    def test_garbage_claim_body_does_not_wedge_the_key(self, tmp_path):
        path = claim_path(tmp_path, KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not json at all")
        assert try_acquire(tmp_path, KEY) is not None

    def test_breaker_backs_off_when_claim_changes_hands(self, tmp_path, dead_pid):
        path = plant_claim(tmp_path, KEY, pid=dead_pid)
        observed = path.read_bytes()
        # a new, live holder replaces the stale claim before we break it
        plant_claim(tmp_path, KEY, pid=os.getpid())
        assert claims._break_if_unchanged(path, observed) is False
        assert holder(tmp_path, KEY).pid == os.getpid()


class TestBootSweep:
    def test_sweep_breaks_only_stale_claims(self, tmp_path, dead_pid):
        plant_claim(tmp_path, "aa" + "0" * 62, pid=dead_pid)
        plant_claim(tmp_path, "bb" + "0" * 62, pid=os.getpid(), age=50.0, lease=1.0)
        plant_claim(tmp_path, "cc" + "0" * 62, pid=os.getpid())
        assert break_stale_claims(tmp_path) == 2
        assert holder(tmp_path, "aa" + "0" * 62) is None
        assert holder(tmp_path, "bb" + "0" * 62) is None
        assert holder(tmp_path, "cc" + "0" * 62) is not None

    def test_sweep_on_missing_directory_is_zero(self, tmp_path):
        assert break_stale_claims(tmp_path / "nowhere") == 0


# --------------------------------------------------------------------- #
# Seeded multiprocess interleaving property
# --------------------------------------------------------------------- #

WORKERS = 4
ITERATIONS = 12
CRASH_PROBABILITY = 0.3
#: Long enough that lease expiry can never fire inside the test —
#: recovery from a crashed holder must come from dead-pid breaking.
LONG_LEASE = 3600.0


def _contend(root, worker, seed):
    """One worker: loop of acquire → critical section → release or crash.

    The critical section is guarded by an ``O_CREAT | O_EXCL`` sentinel
    recording the holder's pid.  Two *live* processes inside at once is
    the violation this test hunts; a sentinel left by a crashed (dead
    pid) holder is expected debris that the next rightful claim holder
    cleans up.
    """
    rng = random.Random(seed * 1000 + worker)
    root = Path(root)
    sentinel = root / "critical.sentinel"
    violations = root / "violations.log"
    for _round in range(ITERATIONS):
        claim = try_acquire(root, KEY, lease=LONG_LEASE, owner=f"w{worker}")
        if claim is None:
            time.sleep(rng.uniform(0.0, 0.003))
            continue
        try:
            os.close(
                os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            )
            sentinel.write_text(str(os.getpid()))
        except FileExistsError:
            try:
                previous = int(sentinel.read_text() or "0")
            except (OSError, ValueError):
                previous = 0
            if previous and not pid_is_dead(previous):
                with open(violations, "a") as handle:  # two live holders!
                    handle.write(
                        json.dumps({"worker": worker, "other_pid": previous})
                        + "\n"
                    )
            # crashed predecessor's debris: we hold the claim, reclaim it
            sentinel.write_text(str(os.getpid()))
        time.sleep(rng.uniform(0.0, 0.002))
        if rng.random() < CRASH_PROBABILITY:
            os._exit(1)  # SIGKILL-equivalent: no release, no cleanup
        sentinel.unlink()
        claim.release()


@pytest.mark.parametrize("seed", [7, 1234])
def test_random_crash_interleavings_never_double_hold(tmp_path, seed):
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    for wave in range(2):
        procs = [
            ctx.Process(
                target=_contend, args=(str(tmp_path), wave * WORKERS + w, seed)
            )
            for w in range(WORKERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode is not None, "worker wedged"

    violations = tmp_path / "violations.log"
    assert not violations.exists(), violations.read_text()

    # whatever a crashed final holder left behind must be recoverable:
    # the claim (if any) is stale by dead pid, and one sweep clears it
    leftover = holder(tmp_path, KEY)
    if leftover is not None:
        assert pid_is_dead(leftover.pid)
        assert break_stale_claims(tmp_path) >= 1
    claim = try_acquire(tmp_path, KEY, lease=LONG_LEASE)
    assert claim is not None
    claim.release()
