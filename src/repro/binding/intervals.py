"""Interval utilities for binding.

Binding two operations to the same functional unit, or two values to the
same register, is only legal when their occupation intervals do not
overlap.  This module centralizes the small amount of interval arithmetic
that the compatibility graph, the clique partitioner and the left-edge
register allocator all rely on.

All intervals are half-open ``[start, end)`` over integer clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open cycle interval ``[start, end)``."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    @property
    def length(self) -> int:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        return self.end == self.start

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one cycle."""
        if self.empty or other.empty:
            return False
        return self.start < other.end and other.start < self.end

    def contains_cycle(self, cycle: int) -> bool:
        return self.start <= cycle < self.end

    def shifted(self, offset: int) -> "Interval":
        return Interval(self.start + offset, self.end + offset)

    def merge(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (they need not overlap)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.start}, {self.end})"


def intervals_overlap(intervals: Sequence[Interval]) -> bool:
    """True if any pair among ``intervals`` overlaps."""
    ordered = sorted(i for i in intervals if not i.empty)
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier.overlaps(later):
            return True
    return False


def any_overlap(interval: Interval, others: Iterable[Interval]) -> bool:
    """True if ``interval`` overlaps any member of ``others``."""
    return any(interval.overlaps(o) for o in others)


def union_length(intervals: Iterable[Interval]) -> int:
    """Number of cycles covered by the union of the intervals."""
    ordered = sorted((i for i in intervals if not i.empty), key=lambda i: i.start)
    covered = 0
    current_start = None
    current_end = None
    for interval in ordered:
        if current_end is None or interval.start > current_end:
            if current_end is not None:
                covered += current_end - current_start
            current_start, current_end = interval.start, interval.end
        else:
            current_end = max(current_end, interval.end)
    if current_end is not None:
        covered += current_end - current_start
    return covered


def max_overlap_count(intervals: Iterable[Interval]) -> int:
    """Maximum number of intervals simultaneously alive in any cycle.

    This is the classic lower bound on the number of registers (for value
    lifetimes) or functional units (for execution intervals) required.
    """
    events: List[Tuple[int, int]] = []
    for interval in intervals:
        if interval.empty:
            continue
        events.append((interval.start, 1))
        events.append((interval.end, -1))
    events.sort()
    active = best = 0
    for _, delta in events:
        active += delta
        best = max(best, active)
    return best
