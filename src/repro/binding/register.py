"""Value lifetime analysis and left-edge register allocation.

After scheduling and FU binding, every data value produced by an
operation must be stored in a register from the cycle its producer
finishes until the last cycle in which a consumer reads it.  Values whose
lifetimes do not overlap can share a register; minimizing register count
for fixed lifetimes is solved optimally by the classical *left-edge*
algorithm (sort by start, greedily pack into the first free register).

Register area contributes to the total datapath area reported by the
synthesis results (see :mod:`repro.datapath` for the area constants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..ir.cdfg import CDFG
from ..ir.operation import OpType
from ..scheduling.schedule import Schedule
from .intervals import Interval, max_overlap_count


@dataclass(frozen=True)
class ValueLifetime:
    """The storage interval of one produced value.

    Attributes:
        producer: Operation producing the value.
        interval: Half-open cycle interval during which the value must be
            held in a register.
    """

    producer: str
    interval: Interval


@dataclass
class RegisterAllocation:
    """Assignment of values to registers.

    ``register_of`` lookups go through a lazily built reverse index
    (producer → register), so interconnect estimation over every edge of
    a large datapath is linear instead of scanning all registers per
    value.  The index mirrors ``registers`` at the time of the first
    lookup; after mutating ``registers`` directly, call
    :meth:`invalidate_index`.
    """

    #: register index -> producers whose values share that register
    registers: Dict[int, List[str]] = field(default_factory=dict)
    lifetimes: Dict[str, ValueLifetime] = field(default_factory=dict)
    _index: Optional[Dict[str, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def count(self) -> int:
        return len(self.registers)

    def _reverse_index(self) -> Dict[str, int]:
        if self._index is None:
            self._index = {
                producer: index
                for index, producers in self.registers.items()
                for producer in producers
            }
        return self._index

    def invalidate_index(self) -> None:
        """Drop the memoized reverse index after mutating ``registers``."""
        self._index = None

    def register_of(self, producer: str) -> Optional[int]:
        return self._reverse_index().get(producer)

    def is_consistent(self) -> bool:
        """No two values sharing a register have overlapping lifetimes."""
        for producers in self.registers.values():
            spans = [self.lifetimes[p].interval for p in producers]
            for i, a in enumerate(spans):
                for b in spans[i + 1:]:
                    if a.overlaps(b):
                        return False
        return True


def value_lifetimes(schedule: Schedule) -> Dict[str, ValueLifetime]:
    """Compute the register lifetime of every produced value.

    A value is born when its producer finishes and dies when its last
    consumer *finishes reading it*, which we conservatively model as the
    last consumer's start cycle + 1 (the operand must be stable while the
    consumer launches).  Values produced by outputs, and values with no
    consumers, need no register.
    """
    cdfg = schedule.cdfg
    lifetimes: Dict[str, ValueLifetime] = {}
    for name in schedule.start_times:
        op = cdfg.operation(name)
        if op.optype is OpType.OUTPUT or op.is_virtual:
            continue
        consumers = [c for c in cdfg.successors(name) if c in schedule.start_times]
        if not consumers:
            continue
        birth = schedule.finish(name)
        death = max(schedule.start(c) for c in consumers) + 1
        if death <= birth:
            # Consumed in the same cycle it becomes available (chaining);
            # the value still occupies a register for that cycle.
            death = birth + 1
        lifetimes[name] = ValueLifetime(name, Interval(birth, death))
    return lifetimes


def left_edge_allocation(lifetimes: Mapping[str, ValueLifetime]) -> RegisterAllocation:
    """Left-edge register allocation (optimal for interval graphs).

    Args:
        lifetimes: Value lifetimes keyed by producer operation name.

    Returns:
        A :class:`RegisterAllocation` with the minimum number of registers.
    """
    ordered = sorted(
        lifetimes.values(), key=lambda lt: (lt.interval.start, lt.interval.end, lt.producer)
    )
    registers: Dict[int, List[str]] = {}
    register_end: Dict[int, int] = {}

    for lifetime in ordered:
        placed = False
        for index in sorted(registers):
            if register_end[index] <= lifetime.interval.start:
                registers[index].append(lifetime.producer)
                register_end[index] = lifetime.interval.end
                placed = True
                break
        if not placed:
            index = len(registers)
            registers[index] = [lifetime.producer]
            register_end[index] = lifetime.interval.end

    return RegisterAllocation(registers=registers, lifetimes=dict(lifetimes))


def allocate_registers(schedule: Schedule) -> RegisterAllocation:
    """Lifetimes + left-edge allocation in one call."""
    return left_edge_allocation(value_lifetimes(schedule))


def register_lower_bound(schedule: Schedule) -> int:
    """Maximum number of simultaneously live values (lower bound on registers)."""
    return max_overlap_count(
        lifetime.interval for lifetime in value_lifetimes(schedule).values()
    )
