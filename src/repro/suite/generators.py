"""Parameterized random CDFG generation.

Random graphs complement the fixed benchmarks in two ways:

* the property-based tests use them to check scheduler and binder
  invariants on thousands of structurally diverse inputs, and
* the scalability benchmark sweeps graph size to measure how the
  synthesis run time grows.

The generator produces layered DAGs that look like real data-flow graphs:
operations are organized in levels, every non-input operation consumes
one or two values from strictly earlier levels, and the operation-type
mix (multiplication-heavy vs. addition-heavy) is controllable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG
from ..ir.operation import OpType


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random CDFG generation.

    Attributes:
        operations: Number of arithmetic operations to generate.
        inputs: Number of primary inputs.
        levels: Number of dependence levels the operations are spread over.
        mul_fraction: Fraction of operations that are multiplications.
        sub_fraction: Fraction of operations that are subtractions (the
            remainder after multiplications and subtractions are additions).
        outputs: Number of sink values wrapped in output operations.
        seed: PRNG seed for reproducibility.
    """

    operations: int = 20
    inputs: int = 4
    levels: int = 5
    mul_fraction: float = 0.3
    sub_fraction: float = 0.2
    outputs: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError("need at least one operation")
        if self.inputs < 1:
            raise ValueError("need at least one input")
        if self.levels < 1:
            raise ValueError("need at least one level")
        if not 0.0 <= self.mul_fraction <= 1.0:
            raise ValueError("mul_fraction must be within [0, 1]")
        if not 0.0 <= self.sub_fraction <= 1.0:
            raise ValueError("sub_fraction must be within [0, 1]")
        if self.mul_fraction + self.sub_fraction > 1.0:
            raise ValueError("mul_fraction + sub_fraction must not exceed 1")


def random_cdfg(config: Optional[GeneratorConfig] = None, name: Optional[str] = None) -> CDFG:
    """Generate a random layered data-flow graph.

    The same configuration (including seed) always produces the same
    graph, which keeps property-test failures reproducible.
    """
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    b = CDFGBuilder(name or f"random_{config.seed}")

    inputs = [b.input(f"in{i}") for i in range(config.inputs)]

    # Assign each operation to a level; every level gets at least one
    # operation when possible.
    level_of: List[int] = []
    for index in range(config.operations):
        if index < config.levels:
            level_of.append(index)
        else:
            level_of.append(rng.randrange(config.levels))
    level_of.sort()

    produced_by_level: List[List[str]] = [list(inputs)]
    names_by_level: List[List[str]] = [[] for _ in range(config.levels)]

    for index, level in enumerate(level_of):
        # Candidate producers: anything from earlier levels (inputs count
        # as level -1 producers).
        candidates: List[str] = []
        for earlier in range(level + 1):
            candidates.extend(produced_by_level[earlier] if earlier < len(produced_by_level) else [])
        if not candidates:
            candidates = list(inputs)

        draw = rng.random()
        if draw < config.mul_fraction:
            optype = OpType.MUL
        elif draw < config.mul_fraction + config.sub_fraction:
            optype = OpType.SUB
        else:
            optype = OpType.ADD

        a = rng.choice(candidates)
        second = rng.choice(candidates)
        op_name = b.op(optype, f"op{index}", (a, second))
        while len(produced_by_level) <= level + 1:
            produced_by_level.append([])
        produced_by_level[level + 1].append(op_name)
        names_by_level[level].append(op_name)

    # Wrap some sinks in outputs.
    cdfg = b.cdfg
    sinks = [n for n in cdfg.sinks() if not cdfg.operation(n).is_io]
    rng.shuffle(sinks)
    for index, sink in enumerate(sinks[: config.outputs]):
        b.output(f"out{index}", sink)

    return b.build()


def random_cdfg_batch(count: int, base_seed: int = 0, **overrides) -> Sequence[CDFG]:
    """A list of random CDFGs with consecutive seeds (for sweeps)."""
    graphs = []
    for offset in range(count):
        config = GeneratorConfig(seed=base_seed + offset, **overrides)
        graphs.append(random_cdfg(config))
    return graphs
