"""Migration tests: legacy ↔ columnar round trips are bit-identical."""

import json

import pytest

from repro.store import (
    ColumnarStore,
    LegacyStore,
    StoreError,
    StoreQuery,
    migrate_store,
    open_store,
    verify_migration,
)
from repro.store.journal import append_journal_line

from .conftest import fill, make_payload


def record_map(store):
    return {
        payload["key"]: json.dumps(payload["record"], sort_keys=True)
        for payload in store.iter_payloads()
    }


@pytest.fixture
def populated_legacy(tmp_path):
    store = LegacyStore(tmp_path / "leg")
    fill(store, 15)
    for index in range(15, 20):
        key, payload = make_payload(
            index, family="fir", feasible=False, error_type="InfeasibleError"
        )
        store.put(key, payload)
        append_journal_line(store.root, payload)
    return store


class TestMigration:
    def test_legacy_to_columnar_bit_identical(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        report = migrate_store(populated_legacy, destination)
        assert report["records"] == 20
        assert report["source_backend"] == "legacy"
        assert report["destination_backend"] == "columnar"
        assert record_map(destination) == record_map(populated_legacy)
        verify_migration(populated_legacy, destination)

    def test_round_trip_back_to_legacy(self, populated_legacy, tmp_path):
        columnar = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, columnar)
        back = LegacyStore(tmp_path / "leg2")
        migrate_store(columnar, back)
        assert record_map(back) == record_map(populated_legacy)
        verify_migration(populated_legacy, back)

    def test_queries_identical_across_backends(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        for query in (
            StoreQuery(family="hal"),
            StoreQuery(feasible=False),
            StoreQuery(power=(11.0, 13.0)),
        ):
            assert sorted(r.key for r in populated_legacy.scan(query)) == sorted(
                r.key for r in destination.scan(query)
            )

    def test_destination_arrives_compacted(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        stats = destination.store_stats()
        assert sum(s["tail_rows"] for s in stats["shards"]) == 0
        assert sum(s["compacted_rows"] for s in stats["shards"]) == 20

    def test_journal_only_strays_are_replayed(self, tmp_path):
        """A record that made the journal but not the object store (the
        classic kill-between-writes window) still migrates."""
        source = LegacyStore(tmp_path / "leg")
        fill(source, 5)
        key, payload = make_payload(500)
        append_journal_line(source.root, payload)  # journal line, no object
        destination = ColumnarStore(tmp_path / "col")
        report = migrate_store(source, destination)
        assert report["records"] == 5
        assert report["replayed"] == 1
        assert destination.get(key) is not None
        assert destination.count() == 6

    def test_journal_carried_to_destination(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        journal = destination.root / "journal.jsonl"
        assert journal.exists()
        lines = [json.loads(line) for line in journal.read_text().splitlines()]
        assert len(lines) == 20

    def test_same_directory_refused(self, populated_legacy):
        with pytest.raises(StoreError):
            migrate_store(populated_legacy, LegacyStore(populated_legacy.root))

    def test_verify_catches_a_mutated_record(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        key, mutated = make_payload(0, area=99999.0)
        destination.put(key, mutated)
        destination.compact()
        with pytest.raises(StoreError):
            verify_migration(populated_legacy, destination)

    def test_verify_catches_a_missing_record(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        missing_key, _ = make_payload(999)
        populated_legacy.put(*make_payload(999))
        with pytest.raises(StoreError):
            verify_migration(populated_legacy, destination)

    def test_open_store_detects_migrated_dir(self, populated_legacy, tmp_path):
        destination = ColumnarStore(tmp_path / "col")
        migrate_store(populated_legacy, destination)
        assert open_store(tmp_path / "col").backend == "columnar"
