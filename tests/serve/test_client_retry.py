"""Unit tests for the client's timeouts and bounded retry policy.

A scripted socket server plays the service's part, one canned response
per connection, so every transport behavior — 429 storms, silent
servers, permanent errors — is exercised deterministically and without
a real synthesis service.
"""

import json
import socket
import threading
import time

import pytest

from repro.serve import Client, ClientError

OK_BODY = json.dumps({"status": "ok"}).encode()
OK = (
    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
    + f"Content-Length: {len(OK_BODY)}\r\n".encode()
    + b"Connection: close\r\n\r\n"
    + OK_BODY
)


def too_many_requests(retry_after):
    body = json.dumps({"error": "queue full"}).encode()
    return (
        b"HTTP/1.1 429 Too Many Requests\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n".encode()
        + f"Retry-After: {retry_after}\r\n".encode()
        + b"Connection: close\r\n\r\n"
        + body
    )


BAD_REQUEST_BODY = json.dumps({"error": "bad spec"}).encode()
BAD_REQUEST = (
    b"HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\n"
    + f"Content-Length: {len(BAD_REQUEST_BODY)}\r\n".encode()
    + b"Connection: close\r\n\r\n"
    + BAD_REQUEST_BODY
)

#: Sentinel: accept the connection, read the request, never answer.
SILENT = object()


class ScriptedServer:
    """One canned response per accepted connection; repeats the last."""

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._open = []
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.url = "http://127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                index = min(self.connections, len(self.script) - 1)
                self.connections += 1
                self._open.append(conn)
            response = self.script[index]
            try:
                conn.settimeout(5)
                self._drain_request(conn)
                if response is SILENT:
                    continue  # leave the socket open and mute
                conn.sendall(response)
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _drain_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk

    def close(self):
        self._listener.close()
        with self._lock:
            for conn in self._open:
                try:
                    conn.close()
                except OSError:
                    pass


@pytest.fixture()
def scripted():
    servers = []

    def factory(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


class TestRetryPolicy:
    def test_429_then_200_succeeds_after_backoff(self, scripted):
        server = scripted([too_many_requests(1), OK])
        sleeps = []
        client = Client(
            server.url, retries=3, backoff=0.01, backoff_cap=0.5,
            sleep=sleeps.append,
        )
        assert client.healthz() == {"status": "ok"}
        assert server.connections == 2
        # the server asked for 1s; the cap bounds what we actually wait
        assert sleeps == [0.5]

    def test_backoff_grows_exponentially_without_retry_after(self, scripted):
        server = scripted(
            [too_many_requests(""), too_many_requests(""), OK]
        )
        sleeps = []
        client = Client(
            server.url, retries=5, backoff=0.1, backoff_cap=10.0,
            sleep=sleeps.append,
        )
        assert client.healthz() == {"status": "ok"}
        assert sleeps == [0.1, 0.2]

    def test_gives_up_after_bounded_retries(self, scripted):
        server = scripted([too_many_requests(1)])
        client = Client(
            server.url, retries=2, backoff=0.001, backoff_cap=0.001,
            sleep=lambda _delay: None,
        )
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert server.connections == 3  # first try + exactly 2 retries

    def test_permanent_errors_are_not_retried(self, scripted):
        server = scripted([BAD_REQUEST])
        client = Client(server.url, retries=5, sleep=lambda _d: None)
        with pytest.raises(ClientError) as excinfo:
            client.submit({"graph": "hal", "latency": 17})
        assert excinfo.value.status == 400
        assert server.connections == 1, "a 400 cannot be fixed by retrying"

    def test_retries_disabled_surfaces_first_429(self, scripted):
        server = scripted([too_many_requests(3), OK])
        client = Client(server.url, retries=0)
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 3.0
        assert server.connections == 1


class TestTimeouts:
    def test_read_timeout_on_silent_server(self, scripted):
        server = scripted([SILENT])
        client = Client(server.url, read_timeout=0.2, retries=0)
        started = time.perf_counter()
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        elapsed = time.perf_counter() - started
        assert "read timed out" in str(excinfo.value)
        assert excinfo.value.status is None
        assert elapsed < 2.0, "a silent server must not hang the client"

    def test_connection_refused_is_a_transport_error(self):
        client = Client("http://127.0.0.1:1", connect_timeout=0.2, retries=3)
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status is None

    def test_timeout_split_defaults_from_single_timeout(self):
        client = Client("http://127.0.0.1:1", timeout=7.5)
        assert client.connect_timeout == 7.5
        assert client.read_timeout == 7.5
        split = Client("http://127.0.0.1:1", connect_timeout=0.5, read_timeout=30.0)
        assert split.connect_timeout == 0.5
        assert split.read_timeout == 30.0
