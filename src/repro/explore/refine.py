"""Adaptive refinement of the power/area frontier.

A fixed power grid (the seed's Figure-2 driver) spends most of its
synthesis runs re-discovering flat stretches of the frontier: once the
area stops changing, every further grid point is a repeat of the same
design.  The refiner replaces the grid with interval bisection — start
from the frontier's endpoints, and split only those budget intervals
whose endpoints *disagree* (different area, or different feasibility)
until every disagreement is narrower than the requested ``resolution``.

The output is the usual :class:`~repro.synthesis.explore.SweepResult`
shape (an :class:`AdaptiveSweepResult` *is a* ``SweepResult``), so all
downstream reporting works unchanged, and it comes with a guarantee the
dense grid can only approximate: **no frontier step is wider than the
resolution**.  Every pair of adjacent probed budgets either reports the
same area or lies within ``resolution`` of each other — by construction,
because any wider disagreeing interval would have been bisected.

Probes route through the content-addressed
:class:`~repro.explore.cache.ResultCache` when one is given, so a refined
frontier re-runs for free and a refinement after a dense sweep (or vice
versa) only pays for budgets the other did not visit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from ..synthesis.engine import EngineOptions
from ..synthesis.explore import (
    SweepPoint,
    SweepResult,
    apply_cumulative_best,
    minimum_feasible_power,
    point_from_record,
    probe_point,
)

#: Budgets are rounded like :func:`~repro.synthesis.explore.default_power_grid`
#: grids so adaptive probes and grid points share cache entries.
_BUDGET_DECIMALS = 3


@dataclass
class AdaptiveSweepResult(SweepResult):
    """A :class:`SweepResult` plus refinement statistics.

    Attributes:
        resolution: The refinement resolution that was requested.
        portfolio: Whether every probe raced the ``portfolio``
            meta-strategy instead of running the engine alone.
        probes: Budgets evaluated by the refiner, including ones answered
            by the cache.
        synthesis_calls: Synthesis pipeline runs actually performed over
            the whole call — refiner probes *and* the internal
            minimum-feasible-power bisection when ``p_min`` was not
            supplied.  Cache hits are excluded; with a cold start and an
            explicit ``p_min`` this equals ``probes``.
    """

    resolution: float = 0.0
    portfolio: bool = False
    probes: int = 0
    synthesis_calls: int = 0


class _ProbeMemo:
    """In-process memo with the cache's get/put/stats interface.

    Stands in when the caller gave no readable cache, so one refinement
    never synthesizes the same budget twice (the minimum-power
    bisection's final probe *is* the refiner's low endpoint).  Writes are
    forwarded to an underlying write-only cache when one was given.
    """

    def __init__(self, underlying=None) -> None:
        from .cache import CacheStats

        self.stats = CacheStats()
        self._records: Dict[str, object] = {}
        self._underlying = underlying

    def get(self, task):
        record = self._records.get(task.cache_key())
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return dataclasses.replace(record, cached=True, task=task)

    def put(self, task, record) -> None:
        self.stats.writes += 1
        self._records[task.cache_key()] = record
        if self._underlying is not None:
            self._underlying.put(task, record)


def _points_disagree(a: SweepPoint, b: SweepPoint, area_tolerance: float) -> bool:
    """Whether the frontier changes somewhere between two probed budgets."""
    if a.feasible != b.feasible:
        return True
    if not a.feasible:
        return False
    return abs(a.area - b.area) > area_tolerance


def adaptive_power_sweep(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    *,
    p_min: Optional[float] = None,
    p_max: float = 150.0,
    resolution: float = 1.0,
    seed_budgets: Optional[Sequence[float]] = None,
    options: Optional[EngineOptions] = None,
    cache=None,
    cumulative_best: bool = False,
    area_tolerance: float = 1e-6,
    portfolio: bool = False,
) -> AdaptiveSweepResult:
    """Refine one benchmark's power/area frontier to ``resolution``.

    Args:
        cdfg: Benchmark graph.
        library: Technology library.
        latency: Latency bound ``T``.
        p_min: Lower end of the swept budget range.  Defaults to the
            bisected minimum feasible power (whose probes share the same
            cache).
        p_max: Upper end of the swept budget range (Figure 2 plots to
            ~150 power units).
        resolution: Maximum width of a frontier step in the output: any
            adjacent pair of probed budgets with differing area (or
            feasibility) is at most this far apart.  Must be at least two
            budget-rounding quanta (``2e-3``) — below that, midpoints
            collapse onto interval endpoints and the guarantee could not
            be honored.
        seed_budgets: Optional extra budgets probed up front (on top of
            the two endpoints).  Interior seeds let the refiner catch a
            non-monotone pocket whose endpoints happen to agree; the
            default endpoints-only seeding is exact for the monotone
            frontiers the paper reports.
        options: Engine options forwarded to every probe.
        cache: A :class:`~repro.explore.cache.ResultCache`; probes hit it
            before synthesizing and store what they compute.
        cumulative_best: Rewrite the probed points with the running-best
            area, exactly like the fixed-grid sweep's flag.
        area_tolerance: Areas closer than this count as "the same step".
        portfolio: Race every probe across the default ``portfolio``
            contender subset instead of running the engine alone — the
            frontier then reflects the best certified area *any*
            contender reaches at each budget.  The internal ``p_min``
            bisection stays on the engine path (a budget feasible for
            the engine is feasible for every portfolio containing it,
            and the bisection only needs a feasible anchor); portfolio
            probes are separate content addresses, so portfolio and
            engine sweeps never collide in the cache.

    Returns:
        An :class:`AdaptiveSweepResult` whose ``points`` are the probed
        budgets in ascending order.
    """
    min_resolution = 2 * 10 ** -_BUDGET_DECIMALS
    if resolution < min_resolution:
        raise ValueError(
            f"resolution must be >= {min_resolution} (budgets are rounded to "
            f"{_BUDGET_DECIMALS} decimals, so a finer step cannot be honored), "
            f"got {resolution}"
        )
    # Without a readable cache, memoize probes in-process: the bisection
    # below probes the p_min budget the refiner immediately re-probes as
    # its low endpoint, and no budget should ever synthesize twice in one
    # refinement.
    probe_cache = cache if (cache is not None and cache.read) else _ProbeMemo(cache)
    calls = 0
    if p_min is None:
        before = probe_cache.stats.misses
        p_min = minimum_feasible_power(
            cdfg,
            library,
            latency,
            precision=min(0.5, resolution),
            upper_hint=max(200.0, p_max),
            options=options,
            cache=probe_cache,
        )
        # each bisection miss is one real synthesis run; report it —
        # hiding the search cost would understate the sweep's true price
        calls += probe_cache.stats.misses - before
    lo = round(float(p_min), _BUDGET_DECIMALS)
    hi = round(float(p_max), _BUDGET_DECIMALS)
    if hi < lo:
        hi = lo

    evaluated: dict = {}

    def probe(budget: float) -> SweepPoint:
        nonlocal calls
        if budget in evaluated:
            return evaluated[budget]
        record = probe_point(
            cdfg, library, latency, budget, options,
            cache=probe_cache, portfolio=portfolio,
        )
        if not record.cached:
            calls += 1
        point = point_from_record(budget, record)
        evaluated[budget] = point
        return point

    seeds = sorted({lo, hi, *(round(float(b), _BUDGET_DECIMALS) for b in seed_budgets or ())})
    seeds = [b for b in seeds if lo <= b <= hi]
    for budget in seeds:
        probe(budget)

    intervals: List[tuple] = list(zip(seeds, seeds[1:]))
    while intervals:
        a, b = intervals.pop()
        if b - a <= resolution:
            continue
        if not _points_disagree(evaluated[a], evaluated[b], area_tolerance):
            continue
        mid = round((a + b) / 2.0, _BUDGET_DECIMALS)
        if mid <= a or mid >= b:
            # the interval is finer than the budget rounding; stop here
            continue
        probe(mid)
        intervals.append((a, mid))
        intervals.append((mid, b))

    sweep = AdaptiveSweepResult(
        benchmark=cdfg.name,
        latency_bound=latency,
        resolution=resolution,
        portfolio=portfolio,
        probes=len(evaluated),
        synthesis_calls=calls,
    )
    points = [evaluated[budget] for budget in sorted(evaluated)]
    sweep.points = apply_cumulative_best(points) if cumulative_best else points
    return sweep
