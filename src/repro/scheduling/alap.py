"""Classical as-late-as-possible (ALAP) scheduling.

ALAP pushes every operation as late as the latency bound allows; together
with ASAP it defines each operation's mobility window, which both the
force-directed baseline and the compatibility-graph construction use.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..ir.cdfg import CDFG, CDFGError
from ..library.library import FULibrary
from ..library.selection import (
    MinPowerSelection,
    Selection,
    selection_delays,
    selection_powers,
)
from .constraints import TimeConstraint
from .schedule import Schedule


def alap_schedule(
    cdfg: CDFG,
    delays: Mapping[str, int],
    powers: Mapping[str, float],
    latency: int,
    locked: Optional[Mapping[str, int]] = None,
    label: str = "alap",
) -> Schedule:
    """Schedule every operation at its latest start under a latency bound.

    Args:
        cdfg: Graph to schedule.
        delays: Per-operation latency in cycles.
        powers: Per-operation per-cycle power.
        latency: Cycle budget; all operations must finish by this cycle.
        locked: Optional fixed start times honoured verbatim.
        label: Label stored on the resulting schedule.

    Raises:
        CDFGError: if the latency bound is below the critical path, i.e.
            some operation would need to start before cycle 0.
    """
    locked = dict(locked or {})
    start: Dict[str, int] = {}
    for name in cdfg.reverse_topological_order():
        if name in locked:
            start[name] = locked[name]
            continue
        latest_finish = latency
        for succ in cdfg.successors(name):
            latest_finish = min(latest_finish, start[succ])
        start[name] = latest_finish - delays[name]
        if start[name] < 0:
            raise CDFGError(
                f"latency bound {latency} infeasible: operation {name!r} "
                f"would have to start at cycle {start[name]}"
            )
    return Schedule(
        cdfg=cdfg,
        start_times=start,
        delays=dict(delays),
        powers=dict(powers),
        label=label,
        metadata={"latency_bound": latency},
    )


def alap_schedule_with_library(
    cdfg: CDFG,
    library: FULibrary,
    time: TimeConstraint,
    selection: Optional[Selection] = None,
    label: str = "alap",
) -> Schedule:
    """ALAP schedule using delays/powers from a library module selection."""
    if selection is None:
        selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    return alap_schedule(cdfg, delays, powers, time.latency, label=label)
