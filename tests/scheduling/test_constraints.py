"""Unit tests for repro.scheduling.constraints."""

import math

import pytest

from repro.scheduling.constraints import (
    ConstraintError,
    PowerConstraint,
    ResourceConstraint,
    SynthesisConstraints,
    TimeConstraint,
    feasible_power_floor,
    minimum_feasible_power,
)
from repro.library.module import FUModule
from repro.ir.operation import OpType


class TestTimeConstraint:
    def test_satisfied(self):
        t = TimeConstraint(10)
        assert t.satisfied_by(10)
        assert t.satisfied_by(3)
        assert not t.satisfied_by(11)

    def test_positive_latency_required(self):
        with pytest.raises(ConstraintError):
            TimeConstraint(0)
        with pytest.raises(ConstraintError):
            TimeConstraint(-3)


class TestPowerConstraint:
    def test_allows_with_tolerance(self):
        p = PowerConstraint(10.0)
        assert p.allows(10.0)
        assert p.allows(9.99)
        assert not p.allows(10.01)

    def test_headroom(self):
        assert PowerConstraint(10.0).headroom(4.0) == pytest.approx(6.0)

    def test_unbounded(self):
        p = PowerConstraint.unbounded()
        assert p.is_unbounded
        assert p.allows(1e12)
        assert math.isinf(p.max_power)

    def test_positive_budget_required(self):
        with pytest.raises(ConstraintError):
            PowerConstraint(0.0)
        with pytest.raises(ConstraintError):
            PowerConstraint(-1.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConstraintError):
            PowerConstraint(1.0, tolerance=-1e-3)


class TestResourceConstraint:
    def test_limits(self):
        adder = FUModule.make("add", {OpType.ADD}, 87, 1, 2.5)
        mult = FUModule.make("Mult (ser.)", {OpType.MUL}, 103, 4, 2.7)
        limits = ResourceConstraint({"add": 2})
        assert limits.limit_for(adder) == 2
        assert limits.limit_for(mult) is None

    def test_unlimited(self):
        adder = FUModule.make("add", {OpType.ADD}, 87, 1, 2.5)
        assert ResourceConstraint.unlimited().limit_for(adder) is None

    def test_negative_limit_rejected(self):
        with pytest.raises(ConstraintError):
            ResourceConstraint({"add": -1})


class TestSynthesisConstraints:
    def test_of_with_power(self):
        constraints = SynthesisConstraints.of(12, 25.0)
        assert constraints.time.latency == 12
        assert constraints.power.max_power == 25.0

    def test_of_without_power(self):
        constraints = SynthesisConstraints.of(12)
        assert constraints.power.is_unbounded


class TestBounds:
    def test_feasible_power_floor(self):
        assert feasible_power_floor(120.0, 10) == pytest.approx(12.0)
        with pytest.raises(ConstraintError):
            feasible_power_floor(1.0, 0)
        with pytest.raises(ConstraintError):
            feasible_power_floor(-1.0, 5)

    def test_minimum_feasible_power_dominated_by_single_op(self):
        powers = {"big": 8.1, "small": 0.5}
        delays = {"big": 2, "small": 1}
        # energy = 16.7 over 20 cycles -> floor 0.835, but the big op alone needs 8.1
        assert minimum_feasible_power(powers, delays, 20) == pytest.approx(8.1)

    def test_minimum_feasible_power_dominated_by_energy(self):
        powers = {f"op{i}": 2.5 for i in range(10)}
        delays = {f"op{i}": 1 for i in range(10)}
        assert minimum_feasible_power(powers, delays, 5) == pytest.approx(5.0)
