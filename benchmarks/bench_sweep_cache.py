"""Sweep caching — cold vs. warm exploration of the Figure-2 frontier.

The exploration subsystem's pitch is that repeated (graph, library, T, P)
points are free: the content-addressed :class:`repro.explore.ResultCache`
answers them without synthesizing.  This module measures that claim on
the repository's own headline workload — a Figure-2 style sweep (minimum
feasible power bisection + a full ``power_area_sweep`` grid per case):

* ``test_figure2_sweep[cold]`` synthesizes every point into a fresh
  cache directory,
* ``test_figure2_sweep[warm]`` re-runs the identical sweep against the
  populated cache,
* ``test_warm_rerun_is_free_and_10x_faster`` asserts the contract: the
  warm re-run performs **zero** synthesis calls and is at least 10×
  faster than the cold run.

Record the cold/warm pair into the repository's benchmark history with::

    python benchmarks/record.py --bench bench_sweep_cache \
        --history BENCH_scalability.json --label sweep-cache

(see :mod:`benchmarks.record`).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from contextlib import contextmanager

import pytest

from repro.api.pipeline import Pipeline
from repro.explore import ResultCache
from repro.library import default_library
from repro.reporting.experiments import figure2_experiment
from repro.suite import hal_cdfg
from repro.synthesis.explore import (
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
)

#: Reduced Figure-2 case set: large enough that a cold sweep costs real
#: synthesis time, small enough for the CI perf-smoke job.
CASES = [("hal", 17), ("fir", 12)]
POWER_CAP = 60.0
STEPS = 8


@contextmanager
def count_synthesis_runs():
    """Count how many times the synthesis pipeline actually executes."""
    calls = {"count": 0}
    original = Pipeline.run

    def counting_run(self, *args, **kwargs):
        calls["count"] += 1
        return original(self, *args, **kwargs)

    Pipeline.run = counting_run
    try:
        yield calls
    finally:
        Pipeline.run = original


def run_figure2(cache: ResultCache):
    return figure2_experiment(
        cases=CASES, power_cap=POWER_CAP, steps=STEPS, cache=cache
    )


@pytest.mark.parametrize("state", ["cold", "warm"])
def test_figure2_sweep(benchmark, state):
    """Wall-clock of the Figure-2 sweep, cold vs. warm cache."""
    root = tempfile.mkdtemp(prefix=f"repro-bench-{state}-")
    try:
        if state == "warm":
            run_figure2(ResultCache(root))  # populate once, outside the timer

            data = benchmark.pedantic(
                lambda: run_figure2(ResultCache(root)), rounds=3, iterations=1
            )
        else:
            fresh = {"n": 0}

            def setup():
                fresh["n"] += 1
                cold_root = f"{root}-{fresh['n']}"
                return (ResultCache(cold_root),), {}

            data = benchmark.pedantic(run_figure2, setup=setup, rounds=2, iterations=1)
        assert set(data.sweeps) == set(CASES)
        for sweep in data.sweeps.values():
            assert sweep.feasible_points()
    finally:
        for path in (root, f"{root}-1", f"{root}-2"):
            shutil.rmtree(path, ignore_errors=True)


def test_warm_rerun_is_free_and_10x_faster():
    """A cached re-run of a full power_area_sweep grid performs zero new
    synthesis calls and is >= 10x faster than the cold run."""
    library = default_library()
    hal = hal_cdfg()
    root = tempfile.mkdtemp(prefix="repro-bench-assert-")
    try:
        def sweep(cache):
            p_min = minimum_feasible_power(hal, library, 17, cache=cache)
            grid = default_power_grid(p_min, POWER_CAP, 12)
            return power_area_sweep(hal, library, 17, grid, cache=cache)

        with count_synthesis_runs() as cold_calls:
            started = time.perf_counter()
            cold_sweep = sweep(ResultCache(root))
            cold = time.perf_counter() - started
        assert cold_calls["count"] > 0

        with count_synthesis_runs() as warm_calls:
            started = time.perf_counter()
            warm_sweep = sweep(ResultCache(root))
            warm = time.perf_counter() - started

        assert warm_calls["count"] == 0, "warm re-run must not synthesize"
        assert [(p.power_budget, p.area) for p in cold_sweep.points] == [
            (p.power_budget, p.area) for p in warm_sweep.points
        ]
        assert cold >= 10 * warm, (
            f"warm sweep must be >=10x faster: cold={cold:.3f}s warm={warm:.3f}s "
            f"({cold / warm:.1f}x)"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
