"""Ablation B — multi-implementation library vs. single-implementation library.

The paper's combined formulation explicitly exploits a library in which
"the speed and energy usage of an operator can be traded versus the area
of the operator" (serial vs. parallel multiplier, dedicated adder vs.
multi-function ALU).  This ablation synthesizes the paper's benchmarks
with the full Table-1 library and with a reduced library offering exactly
one implementation per operation type, and compares the resulting areas.

The full library must never be worse (it is a superset of the choices)
and is strictly better wherever the trade-off matters.
"""

from __future__ import annotations

from repro.library import default_library, single_implementation_library
from repro.reporting.table import render_table
from repro.suite.registry import build_benchmark
from repro.synthesis.explore import synthesize_point

CASES = [
    ("hal", 17, 12.0),
    ("hal", 10, 30.0),
    ("cosine", 15, 30.0),
    ("elliptic", 22, 25.0),
]


def run_comparison():
    full = default_library()
    single = single_implementation_library()
    rows = []
    for name, latency, budget in CASES:
        cdfg = build_benchmark(name)
        with_full = synthesize_point(cdfg, full, latency, budget)
        with_single = synthesize_point(cdfg, single, latency, budget)
        rows.append(
            [
                name,
                latency,
                budget,
                with_full.total_area if with_full else None,
                with_single.total_area if with_single else None,
            ]
        )
    return rows


def test_library_ablation(benchmark):
    rows = benchmark(run_comparison)

    table = render_table(
        ["benchmark", "T", "P", "area (Table 1 library)", "area (single impl.)"],
        rows,
        title="Ablation B: multi-implementation vs. single-implementation library",
    )
    print()
    print(table)

    for name, latency, budget, full_area, single_area in rows:
        # The full library always admits a solution for the paper's cases.
        assert full_area is not None, f"{name} infeasible with the full library"
        if single_area is not None:
            # More implementation choices should not hurt.  The engine is a
            # greedy heuristic, so allow a small noise margin (5 %) instead
            # of demanding strict dominance per case.
            assert full_area <= 1.05 * single_area

    # At least one case must show a strict improvement (the trade-off the
    # paper's library exists to expose).
    improvements = [
        single_area - full_area
        for *_, full_area, single_area in rows
        if full_area is not None and single_area is not None
    ]
    infeasible_for_single = [1 for *_, _f, s in rows if s is None]
    assert infeasible_for_single or any(delta > 1e-6 for delta in improvements)
