"""Design-space exploration over the (time, power) constraint space.

Figure 2 of the paper plots, for each benchmark and latency bound, the
datapath area obtained for a range of power constraints.  This module
drives those sweeps on top of the unified task/batch API: every point is
a :class:`~repro.api.task.SynthesisTask` and the grid is executed through
:func:`~repro.api.batch.run_batch`, so a sweep parallelizes across cores
by passing ``jobs=N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..ir.cdfg import CDFG
from ..library.library import FULibrary
from .engine import EngineOptions
from .result import SynthesisError, SynthesisResult


@dataclass(frozen=True)
class SweepPoint:
    """One point of a power-constraint sweep.

    Attributes:
        power_budget: The power constraint ``P`` used.
        feasible: Whether synthesis succeeded under (T, P).
        area: Total datapath area (``None`` when infeasible).
        fu_area: Functional-unit area only (``None`` when infeasible).
        peak_power: Peak power of the result (``None`` when infeasible).
        latency: Cycles used by the result (``None`` when infeasible).
    """

    power_budget: float
    feasible: bool
    area: Optional[float] = None
    fu_area: Optional[float] = None
    peak_power: Optional[float] = None
    latency: Optional[int] = None


@dataclass
class SweepResult:
    """A full power sweep for one (benchmark, latency bound) pair."""

    benchmark: str
    latency_bound: int
    points: List[SweepPoint] = field(default_factory=list)

    def feasible_points(self) -> List[SweepPoint]:
        return [p for p in self.points if p.feasible]

    def areas(self) -> List[float]:
        return [p.area for p in self.feasible_points()]

    def budgets(self) -> List[float]:
        return [p.power_budget for p in self.feasible_points()]

    def area_at(
        self, power_budget: float, tolerance: float = 1e-3
    ) -> Optional[float]:
        """Area of the feasible point closest to ``power_budget``.

        Budgets are matched within ``tolerance`` (the nearest point wins)
        rather than exactly: grid budgets are rounded to 3 decimals by
        :func:`default_power_grid`, so an exact float comparison would
        silently miss a budget recomputed at full precision.
        """
        best: Optional[SweepPoint] = None
        best_gap = tolerance
        for point in self.points:
            if not point.feasible:
                continue
            gap = abs(point.power_budget - power_budget)
            if gap <= best_gap:
                best = point
                best_gap = gap
        return best.area if best is not None else None

    def frontier_area(self, power_budget: float) -> Optional[float]:
        """Step-function view of the frontier: area at the *largest probed
        budget* not exceeding ``power_budget`` (``None`` below the first
        feasible probe).

        This is how a sweep with arbitrary probe positions — e.g. the
        adaptive refiner's — is compared against a fixed grid: a design
        feasible at budget ``p`` is feasible at every budget above ``p``.
        """
        best: Optional[SweepPoint] = None
        for point in self.points:
            if not point.feasible or point.power_budget > power_budget + 1e-9:
                continue
            if best is None or point.power_budget > best.power_budget:
                best = point
        return best.area if best is not None else None

    def is_monotone_non_increasing(self, tolerance: float = 1e-6) -> bool:
        """Area never grows as the power budget is relaxed (paper's shape)."""
        areas = self.areas()
        return all(later <= earlier + tolerance for earlier, later in zip(areas, areas[1:]))


def _point_task(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budget: Optional[float],
    options: Optional[EngineOptions],
    inline: bool = False,
    portfolio: bool = False,
):
    """One (T, P) point as a task.

    ``inline=True`` serializes the graph and library into the spec so it
    can ship to worker processes; otherwise the fields are nominal and
    the caller passes the live objects to the executor directly.
    ``portfolio=True`` addresses the point to the ``portfolio`` racing
    meta-strategy (default contender subset) instead of the engine.
    """
    from ..api.task import SynthesisTask

    return SynthesisTask.of(
        cdfg if inline else cdfg.name,
        library=library if inline else library.name,
        latency=latency,
        power_budget=power_budget,
        scheduler="portfolio" if portfolio else "engine",
        options=options,
    )


def synthesize_point(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budget: Optional[float],
    options: Optional[EngineOptions] = None,
) -> Optional[SynthesisResult]:
    """Synthesize one (T, P) point; return ``None`` when infeasible.

    Always synthesizes — the contract is a *full*
    :class:`SynthesisResult` (schedule, datapath), which the result cache
    deliberately does not store.  Cache-aware probing that only needs the
    scalar metrics goes through :func:`probe_point` instead.
    """
    from ..api.batch import run_task

    task = _point_task(cdfg, library, latency, power_budget, options)
    record = run_task(task, cdfg=cdfg, library=library)
    return record.result if record.feasible else None


def probe_point(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budget: Optional[float],
    options: Optional[EngineOptions] = None,
    cache=None,
    *,
    portfolio: bool = False,
):
    """One (T, P) point as a scalar-metrics :class:`TaskResult` record.

    The cache-aware workhorse behind :func:`minimum_feasible_power`, the
    fixed-grid sweep and the adaptive refiner: a warm
    :class:`~repro.explore.cache.ResultCache` answers repeated probes
    without synthesizing.

    With a cache the task inlines the live graph and library, so the
    content address reflects the *actual* structures being synthesized —
    never a registered benchmark that merely shares the graph's name —
    and the task alone is handed to the executor (``run_task`` refuses
    to cache alongside live overrides, which could diverge from the
    spec the record is filed under).  A cache miss therefore pays one
    inline-dict round-trip, a few percent of a synthesis run; hits pay
    nothing.

    ``portfolio=True`` races the point across the default portfolio
    contender subset instead of running the engine alone.  Portfolio
    tasks always inline (``run_task`` rejects live-object overrides for
    them — the racing contenders may run in other processes).
    """
    from ..api.batch import run_task

    if cache is not None or portfolio:
        task = _point_task(
            cdfg, library, latency, power_budget, options,
            inline=True, portfolio=portfolio,
        )
        return run_task(task, keep_result=False, cache=cache)
    task = _point_task(cdfg, library, latency, power_budget, options)
    return run_task(task, cdfg=cdfg, library=library, keep_result=False)


def library_power_floor(library: FULibrary) -> float:
    """The cheapest module's power: a lower bound on any design's peak.

    Every feasible schedule executes at least one operation in some
    cycle, and that operation draws at least the lowest per-module power
    in the library — so no budget below this floor can ever be feasible.
    """
    powers = [module.power for module in library.modules()]
    return min(powers) if powers else 0.0


def minimum_feasible_power(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    precision: float = 0.5,
    upper_hint: float = 200.0,
    options: Optional[EngineOptions] = None,
    cache=None,
) -> float:
    """Smallest power budget (to ``precision``) admitting a feasible design.

    Binary search between the library-derived lower bound (the cheapest
    module's power, see :func:`library_power_floor`) and ``upper_hint``;
    raises :class:`SynthesisError` when even the hint is infeasible (which
    indicates an impossible latency bound).  Probes route through
    ``cache`` when one is given, so repeated frontier searches — across
    sweeps and CLI invocations — cost nothing the second time.

    Probed budgets (and hence the returned bound) are rounded to the
    same 3 decimals as :func:`default_power_grid` budgets and the
    adaptive refiner's probes, so the bisection's cache entries are
    shared with the sweep that follows it — in particular the returned
    ``p_min`` itself, which every sweep re-probes as its first grid
    point.
    """
    low = round(library_power_floor(library), 3)
    high = round(max(upper_hint, low), 3)
    if not probe_point(cdfg, library, latency, high, options, cache=cache).feasible:
        raise SynthesisError(
            f"no feasible design for {cdfg.name!r} at T={latency} even with P={high}"
        )
    while high - low > precision:
        mid = round((low + high) / 2.0, 3)
        if mid <= low or mid >= high:
            break  # the interval is finer than the budget rounding
        if probe_point(cdfg, library, latency, mid, options, cache=cache).feasible:
            high = mid
        else:
            low = mid
    return high


def point_from_record(budget: float, record) -> SweepPoint:
    """Convert one batch :class:`TaskResult` record into a sweep point."""
    if not record.feasible:
        return SweepPoint(power_budget=budget, feasible=False)
    return SweepPoint(
        power_budget=budget,
        feasible=True,
        area=record.area,
        fu_area=record.fu_area,
        peak_power=record.peak_power,
        latency=record.latency,
    )


def apply_cumulative_best(points: Sequence[SweepPoint]) -> List[SweepPoint]:
    """Rewrite ``points`` (ascending budgets) with the running-best area.

    A design whose peak power respects a tighter budget is also valid
    under every looser budget, so each feasible point may report the best
    (smallest) area seen at any budget up to and including its own.
    Infeasible points pass through unchanged.
    """
    best: Optional[SweepPoint] = None
    rewritten: List[SweepPoint] = []
    for point in points:
        if not point.feasible:
            rewritten.append(point)
            continue
        if best is None or point.area < best.area:
            best = point
            rewritten.append(point)
        else:
            rewritten.append(
                SweepPoint(
                    power_budget=point.power_budget,
                    feasible=True,
                    area=best.area,
                    fu_area=best.fu_area,
                    peak_power=best.peak_power,
                    latency=best.latency,
                )
            )
    return rewritten


def power_area_sweep(
    cdfg: CDFG,
    library: FULibrary,
    latency: int,
    power_budgets: Sequence[float],
    options: Optional[EngineOptions] = None,
    cumulative_best: bool = False,
    jobs: Optional[int] = None,
    cache=None,
) -> SweepResult:
    """Synthesize the benchmark for every budget in ``power_budgets``.

    Every budget becomes one :class:`~repro.api.task.SynthesisTask`; the
    grid runs through :func:`~repro.api.batch.run_batch`, in parallel when
    ``jobs > 1``.  Parallel results are identical to sequential ones —
    each point is an independent synthesis run.

    Args:
        cdfg: Benchmark graph.
        library: Technology library.
        latency: Latency bound ``T``.
        power_budgets: Budgets to synthesize under, in ascending order.
        options: Engine options forwarded to every run.
        cumulative_best: When True, each point reports the best (smallest)
            area seen at *any budget up to and including* this one (see
            :func:`apply_cumulative_best`); it removes the greedy
            heuristic's occasional non-monotone noise from the reported
            curve.  The raw per-budget results are what you get with the
            default ``False``.
        jobs: Worker processes for the batch executor (``None``/1 =
            sequential).
        cache: A :class:`~repro.explore.cache.ResultCache`; budgets
            already synthesized — by any previous sweep, probe or CLI
            invocation — come back as instant hits, and every computed
            point is stored for the next run.
    """
    from ..api.batch import run_batch

    budgets = sorted(power_budgets)
    parallel = jobs is not None and jobs > 1 and len(budgets) > 1
    if parallel:
        tasks = [
            _point_task(cdfg, library, latency, budget, options, inline=True)
            for budget in budgets
        ]
        records = run_batch(tasks, jobs=jobs, keep_results=False, cache=cache)
    else:
        records = [
            probe_point(cdfg, library, latency, budget, options, cache=cache)
            for budget in budgets
        ]

    sweep = SweepResult(benchmark=cdfg.name, latency_bound=latency)
    points = [point_from_record(budget, record) for budget, record in zip(budgets, records)]
    sweep.points = apply_cumulative_best(points) if cumulative_best else points
    return sweep


def default_power_grid(
    minimum: float,
    maximum: float = 150.0,
    steps: int = 12,
) -> List[float]:
    """An evenly spaced power grid from ``minimum`` to ``maximum`` inclusive.

    Figure 2's x-axis runs from roughly the minimum feasible power of each
    benchmark up to 150 power units, so that is the default cap.

    The grid is deduplicated after rounding to 3 decimals: a degenerate
    range (``maximum <= minimum``) collapses to the single budget
    ``[minimum]`` instead of ``steps`` copies of it, and a stride finer
    than the rounding can never emit the same budget twice — duplicate
    budgets would be synthesized (and paid for) once per copy.
    """
    if steps < 2:
        raise ValueError("a power grid needs at least two steps")
    if maximum < minimum:
        maximum = minimum
    stride = (maximum - minimum) / (steps - 1)
    grid = [round(minimum + i * stride, 3) for i in range(steps)]
    return [budget for i, budget in enumerate(grid) if i == 0 or budget != grid[i - 1]]
