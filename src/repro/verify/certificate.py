"""From-scratch certificate checking of synthesis results.

:func:`check_certificate` treats a
:class:`~repro.synthesis.result.SynthesisResult` as an untrusted
*certificate*: a claimed (schedule, allocation, binding, registers,
interconnect, area) tuple whose every property is re-derived here from
the CDFG and the technology library alone.  Nothing is taken from the
synthesizer's own bookkeeping — the per-cycle power profile, the value
lifetimes and the mux counts are recomputed independently, so a bug in a
scheduler or binder cannot hide behind the matching bug in its own
verification.

The checker returns a structured :class:`CertificateReport` listing every
:class:`Violation` found (empty = certified), rather than a bool, so the
differential harness and the ``repro fuzz`` CLI can serialize precise
failure reports.

Violation kinds (the ``Violation.kind`` vocabulary):

===================== ====================================================
``completeness``      an operation is missing a start time / delay / power
``precedence``        a consumer starts before its producer finishes
``latency``           an operation finishes after the latency bound ``T``
``power``             some cycle's total power exceeds the budget ``P``
``binding``           an operation is unbound, double-bound, bound to a
                      missing instance or to a module that cannot execute
                      its operation type
``module-mismatch``   the schedule's delay/power for an operation disagree
                      with the module of the instance it is bound to
``resource-conflict`` two operations overlap on one FU instance
``register-overlap``  two values sharing a register have overlapping
                      lifetimes (recomputed from the schedule)
``register-missing``  a live value (a scheduled producer with scheduled
                      consumers) is stored in no register, or twice
``register-budget``   the stored register count, or the peak number of
                      simultaneously live values re-derived from the
                      schedule, exceeds the register budget ``R``
``interconnect``      the stored mux counts disagree with the counts the
                      interconnect model yields for this binding
``area``              the reported area breakdown disagrees with the
                      recomputed one
===================== ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..binding.interconnect import fu_mux_inputs, register_mux_inputs
from ..datapath.area import register_area
from ..ir.operation import OpType
from ..scheduling.constraints import SynthesisConstraints
from ..scheduling.schedule import ScheduleError
from ..synthesis.result import SynthesisError, SynthesisResult

#: Absolute tolerance for float comparisons (areas, powers).
FLOAT_TOLERANCE = 1e-6


class CertificateError(SynthesisError, ScheduleError):
    """A synthesis result failed certification.

    Subclasses both :class:`~repro.synthesis.result.SynthesisError` and
    :class:`~repro.scheduling.schedule.ScheduleError` so every caller
    that treated the old shallow ``SynthesisResult.verify()`` failures as
    either exception family keeps working.  Carries the full report.
    """

    def __init__(self, report: "CertificateReport") -> None:
        self.report = report
        super().__init__(report.describe())


@dataclass(frozen=True)
class Violation:
    """One broken contract found while certifying a result.

    Attributes:
        kind: Violation class (see the module docstring vocabulary).
        subject: The operation / instance / register / cycle concerned.
        message: Human-readable description of the violation.
        details: JSON-safe supporting data (expected vs. actual values).
    """

    kind: str
    subject: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.message}"


@dataclass
class CertificateReport:
    """The outcome of one :func:`check_certificate` run.

    Attributes:
        graph: Name of the certified CDFG.
        checks: Names of the check passes that ran.
        violations: Every violation found (empty = certified).
    """

    graph: str
    checks: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the result passed every check."""
        return not self.violations

    def kinds(self) -> List[str]:
        """The distinct violation kinds present, in first-seen order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.kind not in seen:
                seen.append(violation.kind)
        return seen

    def by_kind(self, kind: str) -> List[Violation]:
        return [v for v in self.violations if v.kind == kind]

    def raise_if_violations(self) -> None:
        """Raise :class:`CertificateError` unless the result is certified."""
        if self.violations:
            raise CertificateError(self)

    def describe(self) -> str:
        if self.ok:
            return (
                f"certificate for {self.graph!r}: ok "
                f"({len(self.checks)} checks passed)"
            )
        lines = [
            f"certificate for {self.graph!r}: {len(self.violations)} violation(s) "
            f"in {len(self.kinds())} class(es)"
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph,
            "ok": self.ok,
            "checks": list(self.checks),
            "violations": [violation.to_dict() for violation in self.violations],
        }


# --------------------------------------------------------------------------- #
# Individual check passes
# --------------------------------------------------------------------------- #
def _check_completeness(result: SynthesisResult, report: CertificateReport) -> None:
    schedule = result.schedule
    cdfg = schedule.cdfg
    for name in cdfg.schedulable_operations():
        if name not in schedule.start_times:
            report.violations.append(
                Violation("completeness", name, "operation has no start time")
            )
            continue
        if schedule.start_times[name] < 0:
            report.violations.append(
                Violation(
                    "completeness",
                    name,
                    f"negative start cycle {schedule.start_times[name]}",
                )
            )
        if name not in schedule.delays:
            report.violations.append(
                Violation("completeness", name, "operation has no delay")
            )
        elif schedule.delays[name] <= 0:
            report.violations.append(
                Violation(
                    "completeness", name, f"non-positive delay {schedule.delays[name]}"
                )
            )
        if name not in schedule.powers:
            report.violations.append(
                Violation("completeness", name, "operation has no power")
            )
        elif schedule.powers[name] < 0:
            report.violations.append(
                Violation(
                    "completeness", name, f"negative power {schedule.powers[name]}"
                )
            )


def _scheduled(result: SynthesisResult) -> List[str]:
    """Operations with a full (start, delay, power) record — checkable ops."""
    schedule = result.schedule
    return [
        name
        for name in schedule.start_times
        if name in schedule.delays and name in schedule.powers
    ]


def _check_precedence(result: SynthesisResult, report: CertificateReport) -> None:
    schedule = result.schedule
    for src, dst in schedule.cdfg.edges():
        if src not in schedule.start_times or dst not in schedule.start_times:
            continue
        if src not in schedule.delays:
            continue
        finish = schedule.start_times[src] + schedule.delays[src]
        start = schedule.start_times[dst]
        if start < finish:
            report.violations.append(
                Violation(
                    "precedence",
                    f"{src}->{dst}",
                    f"consumer starts at {start} before producer finishes at {finish}",
                    {"producer_finish": finish, "consumer_start": start},
                )
            )


def _check_latency(
    result: SynthesisResult,
    constraints: SynthesisConstraints,
    report: CertificateReport,
) -> None:
    bound = constraints.time.latency
    schedule = result.schedule
    for name in _scheduled(result):
        finish = schedule.start_times[name] + schedule.delays[name]
        if finish > bound:
            report.violations.append(
                Violation(
                    "latency",
                    name,
                    f"finishes at cycle {finish}, after the bound T={bound}",
                    {"finish": finish, "bound": bound},
                )
            )


def _recomputed_profile(result: SynthesisResult) -> List[float]:
    """The per-cycle power profile, re-accumulated from the raw schedule."""
    schedule = result.schedule
    horizon = 0
    for name in _scheduled(result):
        horizon = max(horizon, schedule.start_times[name] + schedule.delays[name])
    profile = [0.0] * horizon
    for name in _scheduled(result):
        power = schedule.powers[name]
        if power == 0:
            continue
        start = schedule.start_times[name]
        for cycle in range(start, start + schedule.delays[name]):
            if 0 <= cycle < horizon:
                profile[cycle] += power
    return profile


def _check_power(
    result: SynthesisResult,
    constraints: SynthesisConstraints,
    report: CertificateReport,
) -> None:
    power = constraints.power
    if power.is_unbounded:
        return
    for cycle, total in enumerate(_recomputed_profile(result)):
        if total > power.max_power + power.tolerance:
            report.violations.append(
                Violation(
                    "power",
                    f"cycle {cycle}",
                    f"draws {total:g}, above the budget P={power.max_power:g}",
                    {"cycle": cycle, "draw": total, "budget": power.max_power},
                )
            )


def _check_binding(result: SynthesisResult, report: CertificateReport) -> None:
    datapath = result.datapath
    cdfg = result.schedule.cdfg
    schedulable = set(cdfg.schedulable_operations())

    for name in sorted(schedulable):
        if name not in datapath.binding:
            report.violations.append(
                Violation("binding", name, "operation is bound to no FU instance")
            )
    for name, instance_name in datapath.binding.items():
        if instance_name not in datapath.instances:
            report.violations.append(
                Violation(
                    "binding",
                    name,
                    f"bound to unknown instance {instance_name!r}",
                )
            )
            continue
        instance = datapath.instances[instance_name]
        if name not in instance.bound_ops:
            report.violations.append(
                Violation(
                    "binding",
                    name,
                    f"binding map names {instance_name} but the instance does not "
                    "list the operation",
                )
            )
        if name in schedulable:
            optype = cdfg.operation(name).optype
            if not instance.module.supports(optype):
                report.violations.append(
                    Violation(
                        "binding",
                        name,
                        f"module {instance.module.name!r} cannot execute "
                        f"{optype.value!r}",
                        {"module": instance.module.name, "optype": optype.value},
                    )
                )
    # Reverse direction: instances must not claim operations the binding
    # map does not attribute to them (or claim one twice).
    for instance in datapath.instances.values():
        seen: set = set()
        for op_name in instance.bound_ops:
            if op_name in seen:
                report.violations.append(
                    Violation(
                        "binding",
                        op_name,
                        f"listed twice on instance {instance.name}",
                    )
                )
            seen.add(op_name)
            if datapath.binding.get(op_name) != instance.name:
                report.violations.append(
                    Violation(
                        "binding",
                        op_name,
                        f"instance {instance.name} claims the operation but the "
                        f"binding map says {datapath.binding.get(op_name)!r}",
                    )
                )


def _check_module_consistency(
    result: SynthesisResult, report: CertificateReport
) -> None:
    """Schedule delays/powers must be the bound module's delay/power."""
    schedule = result.schedule
    datapath = result.datapath
    for name, instance_name in datapath.binding.items():
        if instance_name not in datapath.instances:
            continue  # reported by _check_binding
        module = datapath.instances[instance_name].module
        delay = schedule.delays.get(name)
        power = schedule.powers.get(name)
        if delay is not None and delay != module.latency:
            report.violations.append(
                Violation(
                    "module-mismatch",
                    name,
                    f"scheduled delay {delay} but module {module.name!r} takes "
                    f"{module.latency} cycle(s)",
                    {"delay": delay, "module_latency": module.latency},
                )
            )
        if power is not None and abs(power - module.power) > FLOAT_TOLERANCE:
            report.violations.append(
                Violation(
                    "module-mismatch",
                    name,
                    f"scheduled power {power:g} but module {module.name!r} draws "
                    f"{module.power:g}",
                    {"power": power, "module_power": module.power},
                )
            )


def _check_resource_conflicts(
    result: SynthesisResult, report: CertificateReport
) -> None:
    """No two operations may overlap on one instance (module latency)."""
    schedule = result.schedule
    for instance in result.datapath.instances.values():
        spans: List[Tuple[int, int, str]] = []
        for op_name in instance.bound_ops:
            if op_name not in schedule.start_times:
                continue
            start = schedule.start_times[op_name]
            spans.append((start, start + instance.module.latency, op_name))
        spans.sort()
        for (s1, e1, op1), (s2, e2, op2) in zip(spans, spans[1:]):
            if s2 < e1:
                report.violations.append(
                    Violation(
                        "resource-conflict",
                        instance.name,
                        f"{op1} [{s1},{e1}) overlaps {op2} [{s2},{e2})",
                        {"first": op1, "second": op2},
                    )
                )


def _derived_lifetimes(result: SynthesisResult) -> Dict[str, Tuple[int, int]]:
    """Value lifetimes re-derived from the schedule (producer → [birth, death)).

    A value is live from its producer's finish until one cycle past its
    last consumer's start (chained same-cycle consumption still occupies
    the register for one cycle).  Outputs and virtual operations produce
    no stored value; neither do values nobody consumes.
    """
    schedule = result.schedule
    cdfg = schedule.cdfg
    lifetimes: Dict[str, Tuple[int, int]] = {}
    for name in _scheduled(result):
        op = cdfg.operation(name)
        if op.optype is OpType.OUTPUT or op.is_virtual:
            continue
        consumers = [c for c in cdfg.successors(name) if c in schedule.start_times]
        if not consumers:
            continue
        birth = schedule.start_times[name] + schedule.delays[name]
        death = max(schedule.start_times[c] for c in consumers) + 1
        lifetimes[name] = (birth, max(death, birth + 1))
    return lifetimes


def _check_registers(result: SynthesisResult, report: CertificateReport) -> None:
    allocation = result.datapath.registers
    if allocation is None:
        report.violations.append(
            Violation(
                "register-missing",
                result.schedule.cdfg.name,
                "datapath carries no register allocation",
            )
        )
        return
    lifetimes = _derived_lifetimes(result)

    stored: Dict[str, List[int]] = {}
    for index, producers in allocation.registers.items():
        for producer in producers:
            stored.setdefault(producer, []).append(index)
    for producer in sorted(lifetimes):
        homes = stored.get(producer, [])
        if not homes:
            report.violations.append(
                Violation(
                    "register-missing",
                    producer,
                    "live value is stored in no register",
                    {"lifetime": list(lifetimes[producer])},
                )
            )
        elif len(homes) > 1:
            report.violations.append(
                Violation(
                    "register-missing",
                    producer,
                    f"value is stored in {len(homes)} registers {sorted(homes)}",
                    {"registers": sorted(homes)},
                )
            )

    for index, producers in allocation.registers.items():
        spans = sorted(
            (lifetimes[p], p) for p in producers if p in lifetimes
        )
        for ((s1, e1), p1), ((s2, e2), p2) in zip(spans, spans[1:]):
            if s2 < e1:
                report.violations.append(
                    Violation(
                        "register-overlap",
                        f"r{index}",
                        f"{p1} [{s1},{e1}) overlaps {p2} [{s2},{e2})",
                        {"first": p1, "second": p2},
                    )
                )


def _check_interconnect(result: SynthesisResult, report: CertificateReport) -> None:
    datapath = result.datapath
    stored = datapath.interconnect
    if stored is None:
        report.violations.append(
            Violation(
                "interconnect",
                result.schedule.cdfg.name,
                "datapath carries no interconnect report",
            )
        )
        return
    expected_fu = fu_mux_inputs(result.schedule.cdfg, datapath.binding)
    if stored.fu_mux_inputs != expected_fu:
        report.violations.append(
            Violation(
                "interconnect",
                "fu-mux",
                f"stored {stored.fu_mux_inputs} FU mux input(s), the binding "
                f"implies {expected_fu}",
                {"stored": stored.fu_mux_inputs, "expected": expected_fu},
            )
        )
    if datapath.registers is not None:
        expected_reg = register_mux_inputs(datapath.registers)
        if stored.register_mux_inputs != expected_reg:
            report.violations.append(
                Violation(
                    "interconnect",
                    "register-mux",
                    f"stored {stored.register_mux_inputs} register mux input(s), "
                    f"the allocation implies {expected_reg}",
                    {"stored": stored.register_mux_inputs, "expected": expected_reg},
                )
            )


def _check_area(result: SynthesisResult, report: CertificateReport) -> None:
    datapath = result.datapath
    expected_fu = sum(instance.area for instance in datapath.instances.values())
    if abs(result.area.functional_units - expected_fu) > FLOAT_TOLERANCE:
        report.violations.append(
            Violation(
                "area",
                "functional-units",
                f"reported {result.area.functional_units:g}, instances sum to "
                f"{expected_fu:g}",
                {"reported": result.area.functional_units, "expected": expected_fu},
            )
        )
    if datapath.registers is not None:
        expected_reg = register_area(datapath.registers.count)
        if abs(result.area.registers - expected_reg) > FLOAT_TOLERANCE:
            report.violations.append(
                Violation(
                    "area",
                    "registers",
                    f"reported {result.area.registers:g}, the allocation implies "
                    f"{expected_reg:g}",
                    {"reported": result.area.registers, "expected": expected_reg},
                )
            )
    if datapath.interconnect is not None:
        if abs(result.area.interconnect - datapath.interconnect.area) > FLOAT_TOLERANCE:
            report.violations.append(
                Violation(
                    "area",
                    "interconnect",
                    f"reported {result.area.interconnect:g}, the mux counts imply "
                    f"{datapath.interconnect.area:g}",
                    {
                        "reported": result.area.interconnect,
                        "expected": datapath.interconnect.area,
                    },
                )
            )


def _check_register_budget(
    result: SynthesisResult,
    constraints: SynthesisConstraints,
    report: CertificateReport,
) -> None:
    """Certify the register budget from two independent angles.

    Both the *stored* allocation's register count and the peak value
    liveness *re-derived from the schedule alone* must fit the budget —
    so neither an inflated allocation nor a schedule whose pressure the
    allocator happened to hide can pass.
    """
    budget = constraints.register_budget
    if budget is None:
        return
    lifetimes = _derived_lifetimes(result)
    events: Dict[int, int] = {}
    for birth, death in lifetimes.values():
        events[birth] = events.get(birth, 0) + 1
        events[death] = events.get(death, 0) - 1
    peak = current = 0
    for cycle in sorted(events):
        current += events[cycle]
        peak = max(peak, current)
    if peak > budget:
        report.violations.append(
            Violation(
                "register-budget",
                result.schedule.cdfg.name,
                f"{peak} values are simultaneously live, budget is {budget}",
                {"peak": peak, "budget": budget},
            )
        )
    allocation = result.datapath.registers
    if allocation is not None and allocation.count > budget:
        report.violations.append(
            Violation(
                "register-budget",
                result.schedule.cdfg.name,
                f"allocation uses {allocation.count} registers, budget is {budget}",
                {"count": allocation.count, "budget": budget},
            )
        )


#: The check passes, in the order they run (name → implementation).
_CHECKS = (
    ("completeness", _check_completeness),
    ("precedence", _check_precedence),
    ("binding", _check_binding),
    ("module-consistency", _check_module_consistency),
    ("resource-conflicts", _check_resource_conflicts),
    ("registers", _check_registers),
    ("interconnect", _check_interconnect),
    ("area", _check_area),
)


def check_certificate(
    result: SynthesisResult,
    constraints: Optional[SynthesisConstraints] = None,
) -> CertificateReport:
    """Independently re-validate a synthesis result end to end.

    Args:
        result: The result to certify (any producer: engine or two-phase).
        constraints: The (T, P) pair to certify against; defaults to the
            constraints recorded on the result.

    Returns:
        A :class:`CertificateReport`; ``report.ok`` is True when every
        contract holds, otherwise ``report.violations`` lists each broken
        one.  Use :meth:`CertificateReport.raise_if_violations` for the
        raising form.
    """
    constraints = constraints if constraints is not None else result.constraints
    report = CertificateReport(graph=result.schedule.cdfg.name)
    for name, check in _CHECKS:
        report.checks.append(name)
        check(result, report)
    report.checks.append("latency")
    _check_latency(result, constraints, report)
    report.checks.append("power")
    _check_power(result, constraints, report)
    report.checks.append("register-budget")
    _check_register_budget(result, constraints, report)
    return report
