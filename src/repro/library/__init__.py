"""Functional-unit library: modules, instances, registries, selection policies."""

from .module import FUInstance, FUModule, LibraryError, busy_intervals
from .library import (
    FULibrary,
    TABLE1_ROWS,
    default_library,
    single_implementation_library,
)
from .selection import (
    MinAreaSelection,
    MinLatencySelection,
    MinPowerSelection,
    Selection,
    SelectionPolicy,
    check_selection,
    selection_delays,
    selection_powers,
    total_energy,
)

__all__ = [
    "FUInstance",
    "FUModule",
    "LibraryError",
    "busy_intervals",
    "FULibrary",
    "TABLE1_ROWS",
    "default_library",
    "single_implementation_library",
    "MinAreaSelection",
    "MinLatencySelection",
    "MinPowerSelection",
    "Selection",
    "SelectionPolicy",
    "check_selection",
    "selection_delays",
    "selection_powers",
    "total_energy",
]
