"""(x, y) series capture, CSV export and ASCII plotting.

The Figure-2 benchmark produces one series per (benchmark, latency) pair;
this module renders them as CSV text (easy to re-plot outside the
environment) and as a coarse ASCII scatter plot so the trade-off shape is
visible directly in the benchmark output.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class Series:
    """A named sequence of (x, y) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def sorted_by_x(self) -> "Series":
        return Series(self.name, sorted(self.points))

    def is_monotone_non_increasing(self, tolerance: float = 1e-9) -> bool:
        """True when y never increases as x grows (after sorting by x)."""
        ys = self.sorted_by_x().ys()
        return all(b <= a + tolerance for a, b in zip(ys, ys[1:]))


def to_csv(series_list: Sequence[Series]) -> str:
    """Long-format CSV (series, x, y) for a list of series."""
    buffer = io.StringIO()
    buffer.write("series,x,y\n")
    for series in series_list:
        for x, y in series.points:
            buffer.write(f"{series.name},{x:g},{y:g}\n")
    return buffer.getvalue()


def ascii_plot(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A coarse ASCII scatter plot of several series on shared axes.

    Each series is drawn with a distinct marker (``*``, ``o``, ``+``, ...).
    Intended for qualitative inspection of the Figure-2 shape in terminal
    output, not for publication.
    """
    markers = "*o+x#@%&"
    all_points = [(x, y) for s in series_list for x, y in s.points]
    if not all_points:
        return "(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(series_list):
        marker = markers[index % len(markers)]
        for x, y in series.points:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} ({y_min:g} .. {y_max:g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_min:g} .. {x_max:g})")
    for index, series in enumerate(series_list):
        lines.append(f"  {markers[index % len(markers)]} {series.name}")
    return "\n".join(lines)


def save_csv(series_list: Sequence[Series], path) -> None:
    """Write :func:`to_csv` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(to_csv(series_list), encoding="utf-8")
