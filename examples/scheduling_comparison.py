#!/usr/bin/env python3
"""Scheduler shoot-out: ASAP vs. force-directed vs. two-step vs. pasap.

Run with::

    python examples/scheduling_comparison.py [benchmark] [latency] [budget]

For one benchmark the script runs four schedulers with the same
functional-unit selection and prints, for each, the makespan, the peak
power and whether it satisfies the (T, P) constraints — the comparison the
paper's Section 1 makes informally when contrasting combined scheduling
with the classical two-step approaches.
"""

from __future__ import annotations

import sys

from repro import build_benchmark, default_library
from repro.library import MinPowerSelection, selection_delays, selection_powers
from repro.power.profile import profile_from_schedule
from repro.reporting.table import render_table
from repro.scheduling import (
    PowerConstraint,
    TimeConstraint,
    asap_schedule,
    force_directed_schedule,
    pasap_schedule,
    two_step_schedule,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "cosine"
    latency = int(sys.argv[2]) if len(sys.argv) > 2 else 19
    budget = float(sys.argv[3]) if len(sys.argv) > 3 else 16.0

    library = default_library()
    cdfg = build_benchmark(benchmark)
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    time = TimeConstraint(latency)
    power = PowerConstraint(budget)

    schedules = {}
    schedules["asap"] = asap_schedule(cdfg, delays, powers)
    schedules["force-directed"] = force_directed_schedule(cdfg, delays, powers, latency)
    schedules["two-step"] = two_step_schedule(cdfg, delays, powers, power, time).schedule
    schedules["pasap"] = pasap_schedule(cdfg, delays, powers, power)

    rows = []
    for name, schedule in schedules.items():
        rows.append(
            [
                name,
                schedule.makespan,
                schedule.peak_power,
                schedule.average_power,
                schedule.respects_time(time),
                schedule.respects_power(power),
            ]
        )

    print(
        render_table(
            ["scheduler", "makespan", "peak power", "avg power", f"meets T={latency}", f"meets P={budget}"],
            rows,
            title=f"Scheduler comparison on {benchmark!r}",
        )
    )
    print()
    for name in ("asap", "pasap"):
        print(profile_from_schedule(schedules[name]).describe())
        print()


if __name__ == "__main__":
    main()
