"""Regenerate the golden generator fingerprints.

Run from the repository root against a *known-good* tree::

    PYTHONPATH=src python tests/golden/generate_generator_goldens.py

The emitted ``golden_generators.json`` pins a SHA-256 fingerprint of the
**canonical graph form** (sorted operations/edges, normalized op types —
the same form the result cache hashes) for

* every registered scenario-family benchmark (chain/tree/butterfly/mesh),
* the first few seeded fuzz variants of every family.

The golden test (:mod:`tests.golden.test_golden_generators`) then
asserts that generator refactors never silently change a produced graph:
a changed fingerprint invalidates every cached result and every seeded
fuzz reproduction, so it must be a deliberate, regenerated change.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.api.task import _canonical_graph
from repro.ir.serialize import to_dict
from repro.suite.generators import family_cdfg, family_names
from repro.suite.registry import build_benchmark

HERE = os.path.dirname(os.path.abspath(__file__))
OUTPUT = os.path.join(HERE, "golden_generators.json")

#: The registered family benchmarks to fingerprint.
BENCHMARKS = ("chain", "tree", "butterfly", "mesh")

#: Seeds fingerprinted per family.
SEEDS = range(3)


def fingerprint(graph) -> dict:
    canonical = _canonical_graph(to_dict(graph))
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return {
        "sha256": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        "operations": len(canonical["operations"]),
        "edges": len(canonical["edges"]),
    }


def main() -> None:
    goldens = {"benchmarks": {}, "families": {}}
    for name in BENCHMARKS:
        goldens["benchmarks"][name] = fingerprint(build_benchmark(name))
        print(f"benchmark {name}: {goldens['benchmarks'][name]['sha256'][:12]}")
    for family in family_names():
        entries = {}
        for seed in SEEDS:
            entries[str(seed)] = fingerprint(family_cdfg(family, seed))
        goldens["families"][family] = entries
        print(f"family {family}: {len(entries)} seed(s)")
    with open(OUTPUT, "w") as handle:
        json.dump(goldens, handle, indent=1, sort_keys=True)
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
