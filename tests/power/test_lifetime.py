"""Unit tests for schedule-level battery-lifetime estimation."""

import pytest

from repro.library.selection import MinPowerSelection, selection_delays, selection_powers
from repro.power.battery import low_quality_battery
from repro.power.lifetime import compare_lifetimes, estimate_lifetime
from repro.power.profile import PowerProfile
from repro.scheduling.asap import asap_schedule
from repro.scheduling.constraints import PowerConstraint
from repro.scheduling.pasap import pasap_schedule


def schedules_for(cdfg, library, budget):
    selection = MinPowerSelection().select(cdfg, library)
    delays = selection_delays(selection, cdfg)
    powers = selection_powers(selection, cdfg)
    spiky = asap_schedule(cdfg, delays, powers)
    flat = pasap_schedule(cdfg, delays, powers, PowerConstraint(budget))
    return spiky, flat


class TestEstimate:
    def test_requires_exactly_one_input(self):
        battery = low_quality_battery()
        with pytest.raises(ValueError):
            estimate_lifetime(battery)
        with pytest.raises(ValueError):
            estimate_lifetime(
                battery,
                schedule="not-none",  # type: ignore[arg-type]
                profile=PowerProfile.of([1.0]),
            )

    def test_estimate_from_profile(self):
        battery = low_quality_battery(capacity=1000.0)
        estimate = estimate_lifetime(battery, profile=PowerProfile.of([5.0, 5.0]))
        assert estimate.iterations > 0
        assert estimate.peak_power == 5.0

    def test_idle_cycles_extend_each_iteration(self):
        battery = low_quality_battery(capacity=1000.0)
        busy = estimate_lifetime(battery, profile=PowerProfile.of([5.0, 5.0]))
        padded = estimate_lifetime(
            battery, profile=PowerProfile.of([5.0, 5.0]), idle_cycles=4, idle_power=1.0
        )
        assert padded.iterations < busy.iterations
        assert padded.average_power < busy.average_power

    def test_estimate_from_schedule(self, cosine, library):
        spiky, _ = schedules_for(cosine, library, budget=12.0)
        battery = low_quality_battery(capacity=1e6)
        estimate = estimate_lifetime(battery, schedule=spiky)
        assert estimate.iterations > 0
        assert estimate.peak_power == pytest.approx(spiky.peak_power)


class TestComparison:
    def test_power_constrained_schedule_extends_lifetime(self, cosine, library):
        """The end-to-end claim of the paper: flattening extends lifetime."""
        spiky, flat = schedules_for(cosine, library, budget=12.0)
        battery = low_quality_battery(capacity=1e6)
        comparison = compare_lifetimes(battery, spiky, flat)
        assert comparison["improved_peak"] < comparison["reference_peak"]
        assert comparison["improved_iterations"] > comparison["reference_iterations"]
        assert comparison["extension"] > 0.0
