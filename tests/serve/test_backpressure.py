"""Backpressure and fairness regressions for the selector HTTP front.

Three promises, each with a regression here:

* a queue at ``max_queue_depth`` answers ``429`` with a ``Retry-After``
  header instead of buffering without bound — and admits nothing from
  the rejected batch (all-or-nothing),
* per-job priorities strictly order dequeues (higher first, FIFO within
  a priority class),
* a flood of idle connections (the slow-poller pathology that sank the
  thread-per-connection front) does not starve live requests —
  ``/healthz`` stays fast with hundreds of silent sockets parked on the
  server.
"""

import socket
import threading
import time

import pytest

from repro.api.task import SynthesisTask
from repro.serve import Client, ClientError, start_server
from repro.serve.http import SynthesisServer
from repro.serve.queue import DONE
from repro.serve.service import SynthesisService


def task_spec(power):
    return {"graph": "hal", "latency": 17, "power_budget": power}


def unstarted_server(tmp_path, **service_kwargs):
    """An HTTP front over a service whose workers never start.

    Nothing drains the queue, so depth is fully under the test's
    control — the only way to make a ``max_queue_depth`` assertion
    deterministic.
    """
    service = SynthesisService(tmp_path, **service_kwargs)
    server = SynthesisServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return service, server, thread


class TestQueueFull:
    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        service, server, thread = unstarted_server(
            tmp_path, workers=1, max_queue_depth=2
        )
        try:
            client = Client(server.url, retries=0)
            client.submit([task_spec(10.0), task_spec(11.0)])
            with pytest.raises(ClientError) as excinfo:
                client.submit(task_spec(12.0))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(5)

    def test_rejected_batch_admits_nothing(self, tmp_path):
        service, server, thread = unstarted_server(
            tmp_path, workers=1, max_queue_depth=3
        )
        try:
            client = Client(server.url, retries=0)
            client.submit([task_spec(10.0), task_spec(11.0)])
            with pytest.raises(ClientError) as excinfo:
                # 2 pending + 3 would overflow: the whole batch bounces
                client.submit([task_spec(12.0), task_spec(13.0), task_spec(14.0)])
            assert excinfo.value.status == 429
            assert service.queue.depth == 2, "partial admission is forbidden"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(5)

    def test_client_backoff_retries_429_until_capacity_frees(self, tmp_path):
        service, server, thread = unstarted_server(
            tmp_path, workers=1, max_queue_depth=1
        )
        try:
            blocking = Client(server.url, retries=0)
            blocking.submit(task_spec(10.0))

            sleeps = []

            def sleep_and_free(delay):
                sleeps.append(delay)
                # simulate the queue draining while we back off
                with service.queue._lock:
                    service.queue._pending.clear()

            retrying = Client(server.url, retries=2, sleep=sleep_and_free)
            accepted = retrying.submit(task_spec(11.0))
            assert len(accepted) == 1
            assert len(sleeps) == 1  # one 429, one backoff, then admitted
        finally:
            server.shutdown()
            server.server_close()
            thread.join(5)


class TestPriorities:
    def test_priority_strictly_orders_dequeues(self, tmp_path):
        service, server, thread = unstarted_server(tmp_path, workers=1)
        try:
            client = Client(server.url, retries=0)
            submitted = {}
            # submission order deliberately scrambles priority order
            for power, priority in ((10.0, 0), (11.0, 5), (12.0, 2), (13.0, 5)):
                (entry,) = client.submit(task_spec(power), priority=priority)
                submitted[entry["id"]] = priority
            service.start()  # only now does anything dequeue
            jobs = [service.job(job_id) for job_id in submitted]
            service.wait(jobs, timeout=120)
            assert all(job.state == DONE for job in jobs)

            by_start = sorted(jobs, key=lambda job: job.started_at)
            assert [job.priority for job in by_start] == [5, 5, 2, 0]
            first, second = by_start[0], by_start[1]
            assert first.seq < second.seq, "FIFO within a priority class"
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False)
            thread.join(5)


class TestSlowPollerFlood:
    IDLE_CONNECTIONS = 500

    def test_healthz_stays_fast_under_idle_connection_flood(self, tmp_path):
        with start_server(state_dir=tmp_path, workers=1) as handle:
            client = Client(handle.url, retries=0)
            assert client.healthz()["status"] == "ok"
            host, port = handle.server.server_address[:2]
            idle = []
            try:
                for _ in range(self.IDLE_CONNECTIONS):
                    sock = socket.create_connection((host, port), timeout=10)
                    idle.append(sock)
                # half-written requests park in the server's parser, the
                # nastier cousin of a silent connection
                for sock in idle[::10]:
                    sock.sendall(b"GET /healthz HTTP/1.1\r\nHos")

                latencies = []
                for _ in range(5):
                    started = time.perf_counter()
                    payload = client.healthz()
                    latencies.append(time.perf_counter() - started)
                    assert payload["status"] == "ok"
                worst = max(latencies)
                assert worst < 0.5, (
                    f"/healthz took {worst:.3f}s with "
                    f"{self.IDLE_CONNECTIONS} idle connections parked"
                )
            finally:
                for sock in idle:
                    sock.close()
