"""Table 1 — the functional-unit library.

Regenerates the paper's Table 1 from :func:`repro.library.default_library`
and asserts every row matches the published values.  The timed section is
the library construction plus candidate queries (the operations every
synthesis run performs constantly).
"""

from __future__ import annotations

from repro.ir.operation import OpType
from repro.library import TABLE1_ROWS, default_library
from repro.reporting import table1_report

EXPECTED = {
    "add": (87, 1, 2.5),
    "sub": (87, 1, 2.5),
    "comp": (8, 1, 2.5),
    "ALU": (97, 1, 2.5),
    "Mult (ser.)": (103, 4, 2.7),
    "Mult (par.)": (339, 2, 8.1),
    "input": (16, 1, 0.2),
    "output": (16, 1, 1.7),
}


def build_and_query_library():
    library = default_library()
    for optype in (OpType.ADD, OpType.SUB, OpType.MUL, OpType.GT, OpType.INPUT, OpType.OUTPUT):
        library.candidates(optype)
        library.cheapest(optype)
        library.fastest(optype)
        library.lowest_power(optype)
    return library


def test_table1_reproduction(benchmark):
    library = benchmark(build_and_query_library)

    # Every row of the paper's Table 1 must be reproduced exactly.
    assert len(library) == len(EXPECTED) == len(TABLE1_ROWS)
    for name, (area, cycles, power) in EXPECTED.items():
        module = library.module(name)
        assert module.area == area
        assert module.latency == cycles
        assert module.power == power

    report = table1_report(library)
    print()
    print(report)
