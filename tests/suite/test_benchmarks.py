"""Unit tests for the fixed benchmark CDFGs (hal, cosine, elliptic, fir, ar)."""

import pytest

from repro.ir.analysis import critical_path_length
from repro.ir.operation import OpType
from repro.ir.validate import is_valid
from repro.library.selection import (
    MinLatencySelection,
    MinPowerSelection,
    selection_delays,
)
from repro.suite.ar import ar_cdfg
from repro.suite.cosine import COSINE_LATENCIES, cosine_cdfg
from repro.suite.elliptic import ELLIPTIC_LATENCIES, elliptic_cdfg
from repro.suite.fir import fir_cdfg
from repro.suite.hal import HAL_LATENCIES, hal_cdfg
from repro.suite.registry import (
    benchmark_names,
    build_benchmark,
    figure2_cases,
    get_benchmark,
)


def serial_cp(cdfg, library):
    selection = MinPowerSelection().select(cdfg, library)
    return critical_path_length(cdfg, selection_delays(selection, cdfg))


def fastest_cp(cdfg, library):
    selection = MinLatencySelection().select(cdfg, library)
    return critical_path_length(cdfg, selection_delays(selection, cdfg))


class TestHal:
    def test_operation_mix(self, hal):
        histogram = hal.type_histogram()
        assert histogram[OpType.MUL] == 6
        assert histogram[OpType.ADD] == 2
        assert histogram[OpType.SUB] == 2
        assert histogram[OpType.GT] == 1
        assert histogram[OpType.INPUT] == 5
        assert histogram[OpType.OUTPUT] == 4

    def test_paper_latency_bounds_are_reachable(self, hal, library):
        # T=17 works with the serial multiplier, T=10 needs the parallel one.
        assert serial_cp(hal, library) <= max(HAL_LATENCIES)
        assert fastest_cp(hal, library) <= min(HAL_LATENCIES)

    def test_io_free_variant(self, library):
        core = hal_cdfg(include_io=False)
        assert not core.operations_of_type(OpType.INPUT)
        assert not core.operations_of_type(OpType.OUTPUT)
        assert is_valid(core)

    def test_structure_of_u_update(self, hal):
        # u1 = (u - 3xudx) - 3ydx: the second subtraction consumes the first.
        assert "s1_u_minus" in hal.predecessors("s2_u1")


class TestCosine:
    def test_operation_mix(self, cosine):
        histogram = cosine.type_histogram()
        assert histogram[OpType.MUL] == 14
        assert histogram[OpType.ADD] + histogram[OpType.SUB] == 24
        assert histogram[OpType.INPUT] == 8
        assert histogram[OpType.OUTPUT] == 8

    def test_paper_latency_bounds_are_reachable(self, cosine, library):
        assert serial_cp(cosine, library) <= min(COSINE_LATENCIES)

    def test_every_output_depends_on_some_input(self, cosine):
        import networkx as nx

        inputs = set(cosine.operations_of_type(OpType.INPUT))
        for out in cosine.operations_of_type(OpType.OUTPUT):
            ancestors = nx.ancestors(cosine.graph, out)
            assert ancestors & inputs

    def test_io_free_variant(self):
        core = cosine_cdfg(include_io=False)
        assert not core.operations_of_type(OpType.INPUT)
        assert is_valid(core)


class TestElliptic:
    def test_operation_mix(self, elliptic):
        histogram = elliptic.type_histogram()
        assert histogram[OpType.MUL] == 8
        assert histogram[OpType.ADD] == 26
        assert histogram[OpType.INPUT] == 8

    def test_paper_latency_bound_reachable(self, elliptic, library):
        assert fastest_cp(elliptic, library) <= ELLIPTIC_LATENCIES[0]
        assert serial_cp(elliptic, library) <= ELLIPTIC_LATENCIES[0]

    def test_io_free_variant(self):
        assert is_valid(elliptic_cdfg(include_io=False))


class TestExtraBenchmarks:
    def test_fir_structure(self, fir, library):
        histogram = fir.type_histogram()
        assert histogram[OpType.MUL] == 16
        assert histogram[OpType.ADD] == 15
        # balanced tree: depth log2(16) = 4 additions after the multiply
        assert serial_cp(fir, library) == 1 + 4 + 4 + 1

    def test_fir_parameterized_taps(self):
        small = fir_cdfg(taps=4)
        assert small.name == "fir4"
        assert len(small.operations_of_type(OpType.MUL)) == 4
        with pytest.raises(ValueError):
            fir_cdfg(taps=1)

    def test_ar_structure(self, ar):
        histogram = ar.type_histogram()
        assert histogram[OpType.MUL] == 16
        assert histogram[OpType.ADD] == 12

    def test_ar_io_free(self):
        assert is_valid(ar_cdfg(include_io=False))


class TestRegistry:
    def test_names(self):
        assert set(benchmark_names()) >= {"hal", "cosine", "elliptic", "fir", "ar"}
        assert set(benchmark_names(paper_only=True)) == {"hal", "cosine", "elliptic"}

    def test_build(self):
        assert build_benchmark("hal").name == "hal"
        with pytest.raises(KeyError):
            build_benchmark("nonexistent")

    def test_spec_latencies(self):
        assert get_benchmark("hal").latencies == (10, 17)
        assert get_benchmark("cosine").latencies == (12, 15, 19)
        assert get_benchmark("elliptic").latencies == (22,)

    def test_figure2_cases(self):
        cases = figure2_cases()
        assert ("hal", 10) in cases and ("hal", 17) in cases
        assert ("cosine", 12) in cases and ("cosine", 15) in cases and ("cosine", 19) in cases
        assert ("elliptic", 22) in cases
        assert len(cases) == 6

    def test_rebuilding_gives_fresh_graphs(self):
        first = build_benchmark("hal")
        second = build_benchmark("hal")
        first.remove_operation("out_c")
        assert "out_c" in second
