"""The portfolio correctness property, checked over seeded random specs.

For any task spec, the portfolio record must be **bit-identical** to the
standalone record of some single contender (its named winner), always
certificate-gated, and an infeasible portfolio verdict must agree with
every contender's own standalone verdict.  Priors may permute launch
order — never the returned record.  These are the invariants that make
the meta-strategy safe to cache and to cross-check differentially.
"""

import dataclasses
import random

import pytest

from repro.api.batch import run_task
from repro.portfolio import portfolio_task, run_portfolio
from repro.portfolio.runner import EXECUTION_ERROR
from repro.store.priors import Priors, constraint_bucket

#: Fast contender pool (the exact engines would slow the property loop).
POOL = ["engine", "pasap", "palap", "force_directed"]

#: Scalar fields a portfolio record copies from its winner.
COPIED = ("area", "fu_area", "peak_power", "latency", "registers", "backtracks")


def sample_task(seed):
    rng = random.Random(f"portfolio-property:{seed}")
    subset = rng.sample(POOL, k=rng.randint(2, len(POOL)))
    return portfolio_task(
        "hal",
        latency=rng.choice([17, 20, 25]),
        power_budget=rng.choice([2.0, 9.0, 12.0, 20.0]),
        strategies=subset,
    )


def standalone(task, runner):
    """The standalone records of every contender, keyed by pair label."""
    records = {}
    for slot in runner.slots:
        records[slot.contender.label] = run_task(slot.contender.task, keep_result=False)
    return records


@pytest.mark.parametrize("seed", range(6))
def test_portfolio_equals_some_single_strategy(seed):
    task = sample_task(seed)
    outcome = run_portfolio(task, priors=Priors())
    record = outcome.record
    runner_view = run_portfolio(task, priors=Priors())  # determinism probe
    assert runner_view.winner == outcome.winner
    assert runner_view.record.feasible == record.feasible

    from repro.portfolio.runner import PortfolioRunner

    records = standalone(task, PortfolioRunner(task, priors=Priors()))

    if record.feasible:
        assert record.winner in records
        twin = records[record.winner]
        # certificate gate: the winner's standalone run is itself feasible,
        # and the portfolio record is bit-identical to it on every scalar
        assert twin.feasible is True
        for name in COPIED:
            assert getattr(record, name) == getattr(twin, name), name
        assert outcome.cacheable is True
    else:
        assert record.winner is None
        assert all(not rec.feasible for rec in records.values())
        if outcome.cacheable:
            # a true infeasible verdict carries the canonical-first type
            first = next(iter(records))
            assert record.error_type == records[first].error_type
        else:
            assert record.error_type == EXECUTION_ERROR


@pytest.mark.parametrize("seed", range(4))
def test_priors_permute_launches_never_the_record(seed):
    task = sample_task(seed)
    from repro.portfolio.runner import PortfolioRunner

    labels = [s.contender.label for s in PortfolioRunner(task, priors=Priors()).slots]
    favored = labels[-1]
    biased = Priors()
    biased.observe(
        "hal",
        constraint_bucket(task.latency, task.power_budget, task.register_budget),
        favored,
        feasible=True,
        elapsed=0.01,
    )

    neutral = run_portfolio(task, priors=Priors())
    permuted = run_portfolio(task, priors=biased)

    assert neutral.launch_order == labels
    assert permuted.launch_order[0] == favored
    assert permuted.priors_ranked is True

    # same winner, same verdict, same scalars — only the launch order moved
    assert permuted.winner == neutral.winner
    assert permuted.record.feasible == neutral.record.feasible
    assert permuted.record.error_type == neutral.record.error_type
    for name in COPIED:
        assert getattr(permuted.record, name) == getattr(neutral.record, name), name


def test_priors_never_drop_or_add_contenders():
    task = sample_task(99)
    from repro.portfolio.runner import PortfolioRunner

    runner = PortfolioRunner(task, priors=Priors())
    labels = [s.contender.label for s in runner.slots]
    rng = random.Random(99)
    for trial in range(10):
        priors = Priors()
        for label in rng.sample(labels, k=rng.randint(0, len(labels))):
            priors.observe(
                "hal",
                constraint_bucket(task.latency, task.power_budget, None),
                label,
                feasible=rng.random() < 0.5,
                elapsed=rng.random(),
            )
        ranked = PortfolioRunner(task, priors=priors).launch_order()
        assert sorted(s.contender.label for s in ranked) == sorted(labels)
