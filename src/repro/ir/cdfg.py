"""Control/data-flow graph (CDFG) container.

The :class:`CDFG` wraps a :class:`networkx.DiGraph` whose nodes are
operation names and whose edges are data dependences.  It is the single
intermediate representation shared by all schedulers, the compatibility
graph construction, the binder and the power analysis.

Design notes
------------
* Nodes are addressed by their *name* (a string); the full
  :class:`~repro.ir.operation.Operation` object is stored as node data.
  This keeps networkx algorithms directly applicable and serialization
  trivial.
* Edges may carry an optional ``port`` attribute identifying which input
  of the consumer the value feeds (0 = left, 1 = right), used by the
  interconnect estimator.
* The graph must remain a DAG; :meth:`CDFG.validate` (see
  :mod:`repro.ir.validate`) enforces this and other structural rules.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from .operation import Operation, OpType


class CDFGError(Exception):
    """Raised for structural errors in a CDFG."""


class CDFG:
    """A data-flow graph of named, typed operations.

    Args:
        name: Name of the graph (benchmark name, function name, ...).

    Example:
        >>> g = CDFG("tiny")
        >>> g.add_operation(Operation("a", OpType.INPUT))
        >>> g.add_operation(Operation("b", OpType.INPUT))
        >>> g.add_operation(Operation("s", OpType.ADD))
        >>> g.add_edge("a", "s", port=0)
        >>> g.add_edge("b", "s", port=1)
        >>> sorted(g.predecessors("s"))
        ['a', 'b']
    """

    def __init__(self, name: str = "cdfg") -> None:
        if not name:
            raise ValueError("CDFG name must be non-empty")
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_operation(self, op: Operation) -> Operation:
        """Add an operation node.

        Raises:
            CDFGError: if an operation with the same name already exists.
        """
        if op.name in self._graph:
            raise CDFGError(f"duplicate operation name: {op.name!r}")
        self._graph.add_node(op.name, op=op)
        return op

    def add_edge(self, src: str, dst: str, port: Optional[int] = None) -> None:
        """Add a data dependence ``src -> dst``.

        Args:
            src: Producer operation name (must exist).
            dst: Consumer operation name (must exist).
            port: Optional consumer input port index.

        Raises:
            CDFGError: if either endpoint is missing, the edge is a
                self-loop, or the edge would create a cycle.
        """
        if src not in self._graph:
            raise CDFGError(f"unknown source operation: {src!r}")
        if dst not in self._graph:
            raise CDFGError(f"unknown destination operation: {dst!r}")
        if src == dst:
            raise CDFGError(f"self-loop on operation {src!r} is not allowed")
        if self._graph.has_edge(src, dst):
            # Duplicate data edges are legal in expressions like ``x*x``;
            # record multiplicity so interconnect estimation stays correct.
            self._graph[src][dst]["multiplicity"] += 1
            if port is not None:
                self._graph[src][dst].setdefault("ports", []).append(port)
            return
        self._graph.add_edge(src, dst, multiplicity=1)
        if port is not None:
            self._graph[src][dst]["ports"] = [port]
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(src, dst)
            raise CDFGError(f"edge {src!r} -> {dst!r} would create a cycle")

    def remove_operation(self, name: str) -> None:
        """Remove an operation and all incident edges."""
        if name not in self._graph:
            raise CDFGError(f"unknown operation: {name!r}")
        self._graph.remove_node(name)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    def operation(self, name: str) -> Operation:
        """Return the :class:`Operation` stored under ``name``."""
        try:
            return self._graph.nodes[name]["op"]
        except KeyError:
            raise CDFGError(f"unknown operation: {name!r}") from None

    def operations(self) -> List[Operation]:
        """All operations, in insertion order."""
        return [self._graph.nodes[n]["op"] for n in self._graph.nodes]

    def operation_names(self) -> List[str]:
        """All operation names, in insertion order."""
        return list(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        """All data edges as (producer, consumer) pairs."""
        return list(self._graph.edges)

    def edge_multiplicity(self, src: str, dst: str) -> int:
        """Number of distinct data values flowing along ``src -> dst``."""
        return int(self._graph[src][dst].get("multiplicity", 1))

    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def predecessors(self, name: str) -> List[str]:
        """Direct data predecessors (producers feeding ``name``)."""
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Direct data successors (consumers of ``name``'s result)."""
        return list(self._graph.successors(name))

    def sources(self) -> List[str]:
        """Operations with no predecessors."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Operations with no successors."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def topological_order(self) -> List[str]:
        """Operation names in a topological order (stable for a fixed graph)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def reverse_topological_order(self) -> List[str]:
        return list(reversed(self.topological_order()))

    def operations_of_type(self, optype: OpType) -> List[str]:
        """Names of all operations of a given type."""
        return [n for n in self._graph.nodes if self.operation(n).optype is optype]

    def type_histogram(self) -> Dict[OpType, int]:
        """Count of operations per type."""
        histogram: Dict[OpType, int] = {}
        for op in self.operations():
            histogram[op.optype] = histogram.get(op.optype, 0) + 1
        return histogram

    def arithmetic_operations(self) -> List[str]:
        """Names of operations that require an arithmetic functional unit."""
        return [n for n in self._graph.nodes if self.operation(n).is_arithmetic]

    def schedulable_operations(self) -> List[str]:
        """Operations the scheduler must place (everything but virtual ops)."""
        return [n for n in self._graph.nodes if not self.operation(n).is_virtual]

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "CDFG":
        """Deep-ish copy (operations are immutable and shared)."""
        clone = CDFG(name or self.name)
        clone._graph = self._graph.copy()
        return clone

    def reversed(self) -> "CDFG":
        """A copy with every edge direction flipped (used by ALAP/palap)."""
        clone = CDFG(f"{self.name}.rev")
        clone._graph = self._graph.reverse(copy=True)
        return clone

    def subgraph(self, names: Iterable[str], name: Optional[str] = None) -> "CDFG":
        """Induced subgraph over ``names`` (copy, not a view)."""
        names = list(names)
        missing = [n for n in names if n not in self._graph]
        if missing:
            raise CDFGError(f"unknown operations in subgraph request: {missing}")
        clone = CDFG(name or f"{self.name}.sub")
        clone._graph = self._graph.subgraph(names).copy()
        return clone

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """A small dictionary describing the graph (used in reports)."""
        histogram = {t.value: c for t, c in sorted(self.type_histogram().items(), key=lambda kv: kv[0].value)}
        return {
            "name": self.name,
            "operations": len(self),
            "edges": self.num_edges(),
            "types": histogram,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CDFG(name={self.name!r}, ops={len(self)}, edges={self.num_edges()})"
