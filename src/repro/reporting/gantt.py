"""ASCII Gantt charts for schedules and bound datapaths.

HLS papers (including the reproduced one, implicitly via Figure 1) reason
about schedules as cycle-by-cycle charts.  This module renders two views:

* :func:`schedule_gantt` — one row per operation, showing its execution
  interval on the cycle axis,
* :func:`datapath_gantt` — one row per functional-unit instance, showing
  which operation occupies it in each cycle (the resource view that makes
  sharing and idle slots visible).

Both return plain strings so they can be printed from examples, tests and
the CLI without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..datapath.rtl import Datapath
from ..scheduling.schedule import Schedule


def _cycle_header(makespan: int, label_width: int, cell_width: int) -> str:
    cells = "".join(str(cycle).rjust(cell_width) for cycle in range(makespan))
    return " " * label_width + cells


def schedule_gantt(
    schedule: Schedule,
    cell_width: int = 3,
    only: Optional[List[str]] = None,
) -> str:
    """Render one row per operation: ``###`` while executing, ``.`` otherwise.

    Args:
        schedule: The schedule to render.
        cell_width: Characters per cycle column.
        only: Optional subset of operation names to show (default: all
            scheduled operations, virtual operations skipped).
    """
    names = only if only is not None else sorted(schedule.start_times)
    names = [
        n
        for n in names
        if n in schedule.start_times and not schedule.cdfg.operation(n).is_virtual
    ]
    if not names:
        return "(empty schedule)"
    label_width = max(len(n) for n in names) + 2
    makespan = schedule.makespan

    lines = [f"schedule {schedule.label or schedule.cdfg.name!r} "
             f"(makespan {makespan}, peak power {schedule.peak_power:.1f})"]
    lines.append(_cycle_header(makespan, label_width, cell_width))
    for name in names:
        start, finish = schedule.interval(name)
        row = []
        for cycle in range(makespan):
            row.append(("#" * cell_width) if start <= cycle < finish else ".".rjust(cell_width))
        lines.append(name.ljust(label_width) + "".join(row))
    return "\n".join(lines)


def datapath_gantt(datapath: Datapath, cell_width: int = 6) -> str:
    """Render one row per FU instance showing the operation it executes per cycle."""
    schedule = datapath.schedule
    if schedule is None:
        return "(datapath has no schedule)"
    makespan = schedule.makespan
    instance_names = sorted(datapath.instances)
    if not instance_names:
        return "(datapath has no instances)"
    label_width = max(len(n) for n in instance_names) + 2

    occupancy: Dict[str, List[str]] = {
        name: ["." for _ in range(makespan)] for name in instance_names
    }
    for op_name, instance_name in datapath.binding.items():
        start, finish = schedule.interval(op_name)
        for cycle in range(start, min(finish, makespan)):
            occupancy[instance_name][cycle] = op_name

    lines = [f"datapath occupancy for {datapath.cdfg.name!r}"]
    lines.append(_cycle_header(makespan, label_width, cell_width))
    for name in instance_names:
        cells = "".join(cell[:cell_width - 1].rjust(cell_width) for cell in occupancy[name])
        lines.append(name.ljust(label_width) + cells)

    utilizations = []
    for name in instance_names:
        busy = sum(1 for cell in occupancy[name] if cell != ".")
        utilizations.append(f"{name}: {100.0 * busy / makespan:.0f}%")
    lines.append("utilization: " + ", ".join(utilizations))
    return "\n".join(lines)


def utilization(datapath: Datapath) -> Dict[str, float]:
    """Fraction of cycles each FU instance is busy (0..1)."""
    schedule = datapath.schedule
    if schedule is None or schedule.makespan == 0:
        return {name: 0.0 for name in datapath.instances}
    busy_cycles: Dict[str, int] = {name: 0 for name in datapath.instances}
    for op_name, instance_name in datapath.binding.items():
        start, finish = schedule.interval(op_name)
        busy_cycles[instance_name] += finish - start
    return {
        name: busy_cycles[name] / schedule.makespan for name in datapath.instances
    }
