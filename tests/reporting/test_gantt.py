"""Unit tests for the ASCII Gantt renderings."""

import pytest

from repro.reporting.gantt import datapath_gantt, schedule_gantt, utilization
from repro.synthesis.engine import synthesize


@pytest.fixture
def result(hal, library):
    return synthesize(hal, library, latency=17, max_power=12.0)


class TestScheduleGantt:
    def test_contains_every_operation_row(self, result):
        text = schedule_gantt(result.schedule)
        for name in result.datapath.binding:
            assert name in text

    def test_execution_bars_match_intervals(self, result):
        text = schedule_gantt(result.schedule, cell_width=1)
        lines = {line.split()[0]: line for line in text.splitlines()[2:]}
        for name in ("m1_3x",):
            row = lines[name]
            bar = row[len(name):].replace(" ", "")
            start, finish = result.schedule.interval(name)
            assert bar.count("#") == finish - start

    def test_subset_rendering(self, result):
        text = schedule_gantt(result.schedule, only=["m1_3x"])
        assert "m1_3x" in text
        assert "a1_y1" not in text

    def test_empty_subset(self, result):
        assert schedule_gantt(result.schedule, only=[]) == "(empty schedule)"


class TestDatapathGantt:
    def test_contains_every_instance_row(self, result):
        text = datapath_gantt(result.datapath)
        for instance_name in result.datapath.instances:
            assert instance_name in text

    def test_reports_utilization(self, result):
        assert "utilization:" in datapath_gantt(result.datapath)

    def test_no_schedule(self, hal):
        from repro.datapath.rtl import Datapath

        assert "no schedule" in datapath_gantt(Datapath(cdfg=hal, schedule=None))


class TestUtilization:
    def test_values_in_unit_interval(self, result):
        values = utilization(result.datapath)
        assert set(values) == set(result.datapath.instances)
        assert all(0.0 < v <= 1.0 for v in values.values())

    def test_shared_instances_busier_than_single_use(self, result):
        values = utilization(result.datapath)
        datapath = result.datapath
        shared = [n for n, inst in datapath.instances.items() if len(inst.bound_ops) >= 2]
        single = [n for n, inst in datapath.instances.items() if len(inst.bound_ops) == 1]
        if shared and single:
            # Compare instances of the same module type when possible.
            assert max(values[n] for n in shared) >= min(values[n] for n in single)
