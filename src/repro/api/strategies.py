"""Built-in binder strategies and registration of every stock strategy.

Importing this module guarantees the registries are fully populated:

* schedulers register themselves in :mod:`repro.scheduling` (``asap``,
  ``alap``, ``list``, ``force_directed``, ``pasap``, ``palap``,
  ``two_step``, ``exact``), :mod:`repro.lp` (``ilp``) and
  :mod:`repro.synthesis.engine` (``engine``),
* selectors and libraries register in :mod:`repro.library`,
* the binders below register here (``greedy``, ``naive``).

A binder maps a *fixed* schedule plus a module selection to a datapath.
The combined ``engine`` scheduler never reaches a binder — it binds while
scheduling, which is the paper's whole point — so these serve the
classical two-phase flows.
"""

from __future__ import annotations

from typing import Dict, List

from ..binding.intervals import Interval
from ..datapath.rtl import Datapath
from ..registries import BINDERS

# Imported for their registration side effects (see module docstring).
from .. import library as _library  # noqa: F401
from .. import lp as _lp  # noqa: F401
from .. import portfolio as _portfolio  # noqa: F401
from .. import scheduling as _scheduling  # noqa: F401
from ..synthesis import engine as _engine  # noqa: F401


@BINDERS.register("naive")
def naive_binder(ctx) -> None:
    """One FU instance per operation — no sharing at all.

    The fastest, largest, most power-spiky datapath; the "undesired"
    baseline of the paper's Figure 1.
    """
    datapath = Datapath(cdfg=ctx.cdfg, schedule=ctx.schedule)
    for op_name in ctx.cdfg.schedulable_operations():
        instance = datapath.add_instance(ctx.selection[op_name])
        datapath.bind(op_name, instance.name)
    ctx.datapath = datapath


@BINDERS.register("greedy")
def greedy_binder(ctx) -> None:
    """Left-edge sharing: bind each operation to the first free instance.

    Operations are visited in start-time order; each goes onto an
    existing instance of its selected module whose busy intervals do not
    overlap, or onto a fresh instance.  This is the classical left-edge
    binder — optimal instance counts per module for a fixed schedule.
    """
    datapath = Datapath(cdfg=ctx.cdfg, schedule=ctx.schedule)
    busy: Dict[str, List[Interval]] = {}
    operations = sorted(
        ctx.cdfg.schedulable_operations(),
        key=lambda name: (ctx.schedule.start(name), name),
    )
    for op_name in operations:
        module = ctx.selection[op_name]
        start = ctx.schedule.start(op_name)
        interval = Interval(start, start + module.latency)
        target = None
        for instance in datapath.instances.values():
            if instance.module.name != module.name:
                continue
            if any(interval.overlaps(existing) for existing in busy[instance.name]):
                continue
            target = instance
            break
        if target is None:
            target = datapath.add_instance(module)
            busy[target.name] = []
        datapath.bind(op_name, target.name)
        busy[target.name].append(interval)
    ctx.datapath = datapath
