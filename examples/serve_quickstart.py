#!/usr/bin/env python3
"""Serving quickstart: boot the synthesis service and submit a batch.

Run with::

    python examples/serve_quickstart.py

This is the in-process version of the ``repro serve`` / ``repro submit``
walkthrough in the README:

1. start the HTTP synthesis server on an ephemeral port,
2. submit a small batch through the blocking :class:`repro.serve.Client`,
3. poll the jobs to completion and print the certified records,
4. resubmit the identical batch and watch every job come back as a warm
   cache hit (single-synthesis semantics),
5. read the ``/stats`` counters the server exposes.

The same server speaks plain HTTP — while it runs you could equally
``curl -X POST http://.../tasks -d '{"graph": "hal", "latency": 17}'``.
"""

from __future__ import annotations

from repro.serve import Client, start_server

#: One small Figure-2-style batch: hal at T=17 across four power budgets.
BATCH = [
    {"graph": "hal", "latency": 17, "power_budget": p, "label": f"hal-P{p:g}"}
    for p in (9.0, 10.0, 12.0, 16.0)
]


def main() -> None:
    # 1. Boot the full stack in-process: HTTP server -> worker pool ->
    #    persistent job queue -> shared result cache.  Port 0 binds an
    #    ephemeral port; a production deployment would use
    #    `repro serve --port 8642 --state-dir .serve` instead.
    with start_server(workers=2) as handle:
        print(f"server listening on {handle.url}")
        client = Client(handle.url)
        print(f"healthz: {client.healthz()}")
        print()

        # 2./3. Submit the batch and block until every job finishes.
        #    Every feasible result has passed the independent certificate
        #    checker before it was stored (the run_task(verify=True) gate).
        records = client.submit_and_wait(BATCH)
        for record in records:
            outcome = (
                f"area={record.area:g} peak={record.peak_power:.2f}"
                if record.feasible
                else f"infeasible ({record.error})"
            )
            print(f"  {record.task.label}: {outcome}")
        print()

        # 4. The same batch again: content-identical tasks are answered
        #    from the shared cache without synthesizing anything.
        again = client.submit_and_wait(BATCH)
        hits = sum(1 for record in again if record.cached)
        print(f"identical resubmission: {hits}/{len(again)} served from cache")

        # 5. The server-side counters (queue depth, cache hit rate, and
        #    the same BatchSummary numbers `repro batch` prints).
        stats = client.stats()
        print(f"cache hit rate: {stats['cache']['hit_rate']:.0%}")
        print(f"summary: {stats['summary']}")


if __name__ == "__main__":
    main()
