"""Experiment drivers shared by the benchmarks, the examples and EXPERIMENTS.md.

Each function reproduces one artifact of the paper's evaluation and
returns structured data plus a rendered text report, so the same code
backs the pytest benchmarks, the runnable examples and the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.pipeline import Pipeline
from ..api.task import SynthesisTask
from ..ir.cdfg import CDFG
from ..library.library import FULibrary, TABLE1_ROWS, default_library
from ..power.analysis import spike_report
from ..power.profile import profile_from_schedule
from ..synthesis.explore import (
    SweepResult,
    default_power_grid,
    minimum_feasible_power,
    power_area_sweep,
)
from ..suite.registry import build_benchmark, figure2_cases
from .series import Series, ascii_plot, to_csv
from .table import render_table


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #
def table1_report(library: Optional[FULibrary] = None) -> str:
    """Render the functional-unit library exactly as the paper's Table 1."""
    library = library or default_library()
    headers = ["Module", "Oprs", "Area", "Clk-cyc.", "P"]
    rows = []
    for name, ops, area, cycles, power in TABLE1_ROWS:
        module = library.module(name)
        rows.append([module.name, ops, int(module.area), module.latency, module.power])
        _ = (area, cycles, power)  # the registry values are asserted in tests
    return render_table(headers, rows, title="Table 1: functional unit library")


# --------------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------------- #
@dataclass
class Figure1Data:
    """Per-cycle profiles of the undesired vs. desired schedule."""

    benchmark: str
    latency: int
    power_budget: float
    unconstrained_profile: List[float]
    constrained_profile: List[float]
    unconstrained_peak: float
    constrained_peak: float
    report: str = ""


def figure1_experiment(
    benchmark: str = "hal",
    latency: int = 17,
    power_budget: float = 11.0,
    library: Optional[FULibrary] = None,
) -> Figure1Data:
    """Reproduce Figure 1: a spiky unconstrained profile vs. a flattened one.

    The *undesired* schedule is plain ASAP with one FU per operation (no
    power awareness); the *desired* schedule is the output of the combined
    power-constrained synthesis at the same latency bound.
    """
    library = library or default_library()
    cdfg = build_benchmark(benchmark)
    pipeline = Pipeline.default()

    naive_task = SynthesisTask.naive(
        cdfg.name,
        library=library.name,
        label=f"figure1-unconstrained[{benchmark}]",
    )
    constrained_task = SynthesisTask.of(
        cdfg,
        library=library,
        latency=latency,
        power_budget=power_budget,
        label=f"figure1-constrained[{benchmark}]",
    )
    unconstrained = pipeline.run(naive_task, cdfg=cdfg, library=library).schedule
    constrained = pipeline.run(constrained_task, cdfg=cdfg, library=library).schedule

    unconstrained_profile = profile_from_schedule(unconstrained)
    constrained_profile = profile_from_schedule(constrained)

    spikes = spike_report(unconstrained_profile, power_budget)
    lines = [
        f"Figure 1 reproduction on {benchmark!r} (T={latency}, P={power_budget:g})",
        "",
        "undesired (ASAP, no power constraint):",
        "  " + " ".join(f"{v:5.1f}" for v in unconstrained_profile),
        f"  peak = {unconstrained_profile.peak:.1f}, "
        f"cycles above P: {list(spikes.violating_cycles)}",
        "",
        "desired (power-constrained synthesis):",
        "  " + " ".join(f"{v:5.1f}" for v in constrained_profile),
        f"  peak = {constrained_profile.peak:.1f} (budget {power_budget:g})",
    ]
    return Figure1Data(
        benchmark=benchmark,
        latency=latency,
        power_budget=power_budget,
        unconstrained_profile=list(unconstrained_profile),
        constrained_profile=list(constrained_profile),
        unconstrained_peak=unconstrained_profile.peak,
        constrained_peak=constrained_profile.peak,
        report="\n".join(lines),
    )


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #
@dataclass
class Figure2Data:
    """All sweeps of the paper's Figure 2 plus rendered reports."""

    sweeps: Dict[Tuple[str, int], SweepResult] = field(default_factory=dict)
    series: List[Series] = field(default_factory=list)
    table: str = ""
    plot: str = ""
    csv: str = ""


def figure2_experiment(
    cases: Optional[Sequence[Tuple[str, int]]] = None,
    power_cap: float = 150.0,
    steps: int = 10,
    library: Optional[FULibrary] = None,
    cumulative_best: bool = True,
    jobs: Optional[int] = None,
    cache=None,
    adaptive: bool = False,
    resolution: float = 2.0,
) -> Figure2Data:
    """Reproduce Figure 2: area vs. power budget for each (benchmark, T).

    Args:
        cases: (benchmark, latency) pairs; defaults to the paper's six.
        power_cap: Upper end of the power sweep (the paper plots to ~150).
        steps: Number of budgets per sweep (fixed-grid mode).
        library: Technology library (defaults to Table 1).
        cumulative_best: Report the running best area as the budget is
            relaxed (a tighter-budget design is also valid under a looser
            budget); see :func:`repro.synthesis.explore.power_area_sweep`.
        jobs: Worker processes per sweep — forwarded to the batch
            executor behind :func:`~repro.synthesis.explore.power_area_sweep`.
        cache: A :class:`~repro.explore.cache.ResultCache` shared by every
            sweep and feasibility probe; a warm cache re-renders the whole
            figure without a single synthesis run.
        adaptive: Refine each curve with
            :func:`~repro.explore.refine.adaptive_power_sweep` instead of
            walking a fixed grid — probes concentrate where the frontier
            moves, so flat stretches cost two points instead of many.
            The refiner is sequential and grid-free: combining it with
            ``jobs > 1`` raises (same contract as the CLI's
            ``--adaptive``), and ``steps`` is not consulted.
        resolution: Frontier step resolution for adaptive mode.
    """
    if adaptive and jobs is not None and jobs > 1:
        raise ValueError(
            "adaptive refinement probes budgets by bisection and is "
            "sequential; it cannot be combined with jobs > 1"
        )
    library = library or default_library()
    cases = list(cases) if cases is not None else figure2_cases()

    data = Figure2Data()
    rows = []
    for benchmark, latency in cases:
        cdfg = build_benchmark(benchmark)
        if adaptive:
            from ..explore.refine import adaptive_power_sweep

            sweep = adaptive_power_sweep(
                cdfg,
                library,
                latency,
                p_max=power_cap,
                resolution=resolution,
                cache=cache,
                cumulative_best=cumulative_best,
            )
        else:
            p_min = minimum_feasible_power(cdfg, library, latency, cache=cache)
            budgets = default_power_grid(p_min, power_cap, steps)
            sweep = power_area_sweep(
                cdfg,
                library,
                latency,
                budgets,
                cumulative_best=cumulative_best,
                jobs=jobs,
                cache=cache,
            )
        data.sweeps[(benchmark, latency)] = sweep

        series = Series(f"{benchmark} (T={latency})")
        for point in sweep.feasible_points():
            series.add(point.power_budget, point.area)
            rows.append(
                [benchmark, latency, point.power_budget, point.area, point.peak_power]
            )
        data.series.append(series)

    data.table = render_table(
        ["benchmark", "T", "P budget", "area", "peak power"],
        rows,
        title="Figure 2: power vs. area under different time constraints",
    )
    data.plot = ascii_plot(data.series, x_label="power budget", y_label="area")
    data.csv = to_csv(data.series)
    return data
