"""Fifth-order elliptic wave filter ("elliptic") benchmark.

The elliptic wave filter (EWF) is the third classic HLS benchmark named in
the paper.  The published EWF data-flow graph contains 26 additions and 8
multiplications over one input sample and seven state variables; the
authors' exact node list is not included in the two-page paper, so this
module reconstructs a wave-digital-filter CDFG with the *same operation
mix* (26 additions, 8 constant multiplications, 8 inputs, 8 outputs) and a
comparable dependence depth: the serial-multiplier critical path is 22
cycles including I/O, matching the single latency bound (T = 22) the paper
evaluates, and drops to 16 cycles when the critical multiplications use
the parallel multiplier.

The structure is three parallel two-multiplier adaptor sections feeding a
combination/feedback tail — the canonical shape of ladder wave filters —
so the scheduling pressure (multiplier-dominated chains competing for the
power budget) mirrors the original benchmark even though the node names
differ.
"""

from __future__ import annotations

from ..ir.builder import CDFGBuilder
from ..ir.cdfg import CDFG


def elliptic_cdfg(include_io: bool = True) -> CDFG:
    """Build the fifth-order elliptic wave filter CDFG.

    Args:
        include_io: Include explicit input/output operations (default).

    Returns:
        A validated :class:`~repro.ir.cdfg.CDFG` named ``"elliptic"``.
    """
    b = CDFGBuilder("elliptic")

    if include_io:
        x = b.input("in_x")
        states = [b.input(f"in_s{i}") for i in range(1, 8)]
    else:
        x = b.const("x")
        states = [b.const(f"s{i}") for i in range(1, 8)]
    coeffs = [b.const(f"coef_{i}") for i in range(1, 9)]

    stage_outputs = []
    next_states = []

    # Three adaptor sections, each using two state variables and two
    # constant multiplications.
    for k in range(3):
        s_lo = states[2 * k]
        s_hi = states[2 * k + 1]
        c_lo = coeffs[2 * k]
        c_hi = coeffs[2 * k + 1]

        a1 = b.add(f"st{k}_a1", x, s_lo)
        a2 = b.add(f"st{k}_a2", a1, s_hi)
        m1 = b.mul(f"st{k}_m1", a2, c_lo)
        m2 = b.mul(f"st{k}_m2", a2, c_hi)
        a3 = b.add(f"st{k}_a3", m1, s_hi)
        a4 = b.add(f"st{k}_a4", m2, a1)
        a5 = b.add(f"st{k}_a5", a4, a3)
        next_states.append(a4)       # next value of the low state
        next_states.append(a3)       # next value of the high state
        stage_outputs.append(a5)

    # Combination / feedback tail using the seventh state variable.
    t1 = b.add("cmb_t1", stage_outputs[0], stage_outputs[1])
    t2 = b.add("cmb_t2", t1, stage_outputs[2])
    m7 = b.mul("cmb_m7", t2, coeffs[6])
    t3 = b.add("cmb_t3", m7, states[6])
    m8 = b.mul("cmb_m8", t3, coeffs[7])
    t4 = b.add("cmb_t4", m8, t2)
    t5 = b.add("cmb_t5", t3, stage_outputs[0])
    t6 = b.add("cmb_t6", t5, states[6])
    t7 = b.add("cmb_t7", t5, stage_outputs[2])
    next_states.append(t6)            # next value of the seventh state

    # Auxiliary correction terms (keep the published 26-addition count
    # without lengthening the serial-multiplier critical path).
    t8 = b.add("cmb_t8", stage_outputs[1], states[6])
    t9 = b.add("cmb_t9", t8, stage_outputs[2])
    t10 = b.add("cmb_t10", t9, t1)
    t11 = b.add("cmb_t11", t10, t5)

    if include_io:
        b.output("out_y", t4)
        b.output("out_y2", t7)
        b.output("out_y3", t11)
        for index, value in enumerate(next_states, start=1):
            b.output(f"out_ns{index}", value)

    return b.build()


#: Latency bound the paper uses for the elliptic benchmark in Figure 2.
ELLIPTIC_LATENCIES = (22,)
