"""Batch executor — parallel fan-out vs. sequential execution.

Not a paper artifact but the performance contract of the new
``run_batch`` API: a 16-point power sweep executed through worker
processes must produce *exactly* the per-point results of sequential
execution, and on multi-core hosts it must be measurably faster.  The
parity assertion always runs; the wall-clock assertion is gated on the
cores actually available, since a single-core container can only pay the
process-pool overhead without any parallelism to show for it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.api import Sweep, run_batch

#: A 16-point elliptic sweep: heavy enough that per-task work dominates
#: worker startup on any multi-core machine.
SWEEP = Sweep(
    "elliptic",
    30,
    [30, 35, 40, 45, 50, 55, 60, 65, 70, 80, 90, 100, 110, 120, 135, 150],
)


def _summary(record):
    return (
        record.feasible,
        record.area,
        record.fu_area,
        record.peak_power,
        record.latency,
        record.backtracks,
    )


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_parity_and_speedup(library):
    tasks = SWEEP.tasks()

    started = time.perf_counter()
    sequential = run_batch(tasks)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_batch(tasks, jobs=4, keep_results=False)
    parallel_seconds = time.perf_counter() - started

    # Hard contract: identical structured results, point for point.
    assert len(sequential) == len(parallel) == 16
    for seq, par in zip(sequential, parallel):
        assert _summary(seq) == _summary(par)

    cores = _available_cores()
    speedup = sequential_seconds / max(parallel_seconds, 1e-9)
    print(
        f"\n16-point elliptic sweep: sequential {sequential_seconds:.2f}s, "
        f"jobs=4 {parallel_seconds:.2f}s, speedup {speedup:.2f}x "
        f"({cores} core(s) available)"
    )
    if cores >= 2:
        # Generous bound: even 2 cores should comfortably beat 1.1x on
        # ~3s of real work; worker startup is ~0.3s once, not per task.
        assert speedup > 1.1, (
            f"expected parallel speedup on {cores} cores, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion skipped: only {cores} core available "
            f"(parity verified; measured {speedup:.2f}x)"
        )


def test_batch_overhead_on_tiny_tasks(benchmark, library):
    """Track the executor's fixed overhead: a small sequential hal sweep."""
    sweep = Sweep("hal", 17, [10.0, 12.0, 16.0, 20.0])

    def run():
        return run_batch(sweep.tasks())

    records = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(record.feasible for record in records)
