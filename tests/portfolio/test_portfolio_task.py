"""Portfolio task plumbing: config parsing, content addressing, dispatch.

The race config is part of a portfolio task's *spec* — the strategy
subset and deadline change what the task means, so they must hash into
its content address, fully resolved (spelling never splits an address).
These tests pin that hashing contract, the config validation surface,
and the ``run_task`` dispatch/caching path end to end.
"""

import dataclasses

import pytest

from repro import ResultCache, SynthesisTask, run_task
from repro.api.batch import TaskResult
from repro.api.task import TaskError
from repro.portfolio import PortfolioConfig, portfolio_task
from repro.portfolio.config import DEFAULT_STRATEGIES, with_deadline
from repro.suite import hal_cdfg


class TestConfigParsing:
    def test_defaults(self):
        config = PortfolioConfig.from_options({})
        assert config.strategies == DEFAULT_STRATEGIES
        assert config.deadline_s is None

    def test_comma_separated_string(self):
        config = PortfolioConfig.from_options(
            {"portfolio_strategies": "engine, pasap+naive"}
        )
        assert config.strategies == ("engine", "pasap+naive")

    @pytest.mark.parametrize(
        "bad",
        [[], [""], [42], 42, ["pasap", None]],
    )
    def test_rejects_malformed_strategy_lists(self, bad):
        with pytest.raises(TaskError):
            PortfolioConfig.from_options({"portfolio_strategies": bad})

    @pytest.mark.parametrize("bad", [True, "soon", 0, -1.5])
    def test_rejects_malformed_deadlines(self, bad):
        with pytest.raises(TaskError):
            PortfolioConfig.from_options({"portfolio_deadline_s": bad})

    def test_options_split_keeps_engine_overrides(self):
        config, overrides = PortfolioConfig.from_task_options(
            {"portfolio_strategies": ["engine"], "max_backtracks": 5}
        )
        assert config.strategies == ("engine",)
        assert overrides == {"max_backtracks": 5}

    def test_round_trips_through_to_options(self):
        config = PortfolioConfig(strategies=("engine", "pasap"), deadline_s=2.0)
        assert PortfolioConfig.from_options(config.to_options()) == config


class TestPairResolution:
    def test_bare_entries_resolve_against_the_task_binder(self):
        config = PortfolioConfig(strategies=("pasap", "palap+naive"))
        assert config.resolved_pairs("greedy") == (
            ("pasap", "greedy"),
            ("palap", "naive"),
        )
        assert config.labels("greedy") == ("pasap+greedy", "palap+naive")

    def test_duplicates_after_resolution_are_rejected(self):
        config = PortfolioConfig(strategies=("pasap", "pasap+greedy"))
        with pytest.raises(TaskError):
            config.resolved_pairs("greedy")

    def test_a_portfolio_cannot_race_itself(self):
        config = PortfolioConfig(strategies=("engine", "portfolio"))
        with pytest.raises(TaskError):
            config.resolved_pairs("greedy")

    def test_self_binding_engine_rejects_a_binder_suffix(self):
        config = PortfolioConfig(strategies=("engine+greedy",))
        with pytest.raises(TaskError):
            config.resolved_pairs("greedy")

    def test_malformed_entry_shapes(self):
        for entry in ("pasap+", "+greedy", "a+b+c"):
            with pytest.raises(TaskError):
                PortfolioConfig(strategies=(entry,)).resolved_pairs("greedy")


class TestContentAddressing:
    def base_kwargs(self):
        return dict(graph="hal", latency=17, power_budget=12.0)

    def task_with(self, **options):
        return SynthesisTask(
            scheduler="portfolio", options=options, **self.base_kwargs()
        )

    def test_spelling_never_splits_an_address(self):
        bare = self.task_with(portfolio_strategies=["engine", "pasap"])
        explicit = self.task_with(portfolio_strategies=["engine", "pasap+greedy"])
        assert bare.cache_key() == explicit.cache_key()

    def test_strategy_order_is_semantic(self):
        ab = self.task_with(portfolio_strategies=["engine", "pasap"])
        ba = self.task_with(portfolio_strategies=["pasap", "engine"])
        assert ab.cache_key() != ba.cache_key()

    def test_subset_is_semantic(self):
        two = self.task_with(portfolio_strategies=["engine", "pasap"])
        three = self.task_with(portfolio_strategies=["engine", "pasap", "palap"])
        assert two.cache_key() != three.cache_key()

    def test_deadline_is_semantic(self):
        plain = self.task_with(portfolio_strategies=["engine"])
        rushed = self.task_with(portfolio_strategies=["engine"], portfolio_deadline_s=5.0)
        assert plain.cache_key() != rushed.cache_key()

    def test_portfolio_spec_carries_resolved_canonical_config(self):
        task = self.task_with(portfolio_strategies=["pasap"], portfolio_deadline_s=3.0)
        spec = task.canonical_spec()
        assert spec["portfolio"] == {
            "strategies": ["pasap+greedy"],
            "deadline_s": 3.0,
        }

    def test_non_portfolio_specs_are_untouched(self):
        task = SynthesisTask(**self.base_kwargs())
        assert "portfolio" not in task.canonical_spec()

    def test_with_deadline_stamps_a_new_address(self):
        task = portfolio_task("hal", latency=17, power_budget=12.0)
        stamped = with_deadline(task, 4.0)
        assert stamped.options["portfolio_deadline_s"] == 4.0
        assert stamped.cache_key() != task.cache_key()
        assert task.options.get("portfolio_deadline_s") is None  # original intact

    def test_with_deadline_guards(self):
        plain = SynthesisTask(**self.base_kwargs())
        with pytest.raises(TaskError):
            with_deadline(plain, 4.0)
        task = portfolio_task("hal", latency=17, power_budget=12.0)
        for bad in (True, -1.0, "soon"):
            with pytest.raises(TaskError):
                with_deadline(task, bad)


class TestRunTaskDispatch:
    def small_task(self, **kwargs):
        return portfolio_task(
            "hal",
            latency=17,
            power_budget=12.0,
            strategies=["engine", "pasap"],
            **kwargs,
        )

    def test_dispatches_and_names_the_winner(self):
        record = run_task(self.small_task(), keep_result=False)
        assert record.feasible is True
        assert record.winner in ("engine", "pasap+greedy")
        assert record.area is not None
        payload = record.to_dict()
        assert payload["winner"] == record.winner
        assert TaskResult.from_dict(payload).winner == record.winner

    def test_rejects_live_overrides(self):
        with pytest.raises(TaskError):
            run_task(self.small_task(), cdfg=hal_cdfg())

    def test_caches_portfolio_and_winner_addresses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = self.small_task()
        cold = run_task(task, keep_result=False, cache=cache)
        assert cold.cached is False
        warm = run_task(task, keep_result=False, cache=cache)
        assert warm.cached is True
        assert warm.winner == cold.winner
        assert warm.area == cold.area
        # the winner is also filed under its own concrete-strategy address,
        # so a later non-portfolio run of the winning pair is warm too
        scheduler = cold.winner.split("+", 1)[0]
        binder = cold.winner.split("+", 1)[1] if "+" in cold.winner else task.binder
        concrete = dataclasses.replace(
            task, scheduler=scheduler, binder=binder, options={}
        )
        hit = cache.get(concrete)
        assert hit is not None
        assert hit.feasible is True
        assert hit.area == cold.area

    def test_warm_concrete_record_preanswers_the_race(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = self.small_task()
        engine_task = dataclasses.replace(task, scheduler="engine", options={})
        standalone = run_task(engine_task, keep_result=False, cache=cache)
        assert standalone.feasible is True
        record = run_task(task, keep_result=False, cache=cache)
        # engine is the canonical-first contender and already certified:
        # the race is decided from the cache, bit-identical to standalone
        assert record.winner == "engine"
        assert record.area == standalone.area
