"""Unit tests for the combined power-constrained synthesis engine."""

import pytest

from repro.ir.operation import OpType
from repro.scheduling.constraints import PowerConstraint, SynthesisConstraints, TimeConstraint
from repro.synthesis.engine import EngineOptions, PowerConstrainedSynthesizer, synthesize
from repro.synthesis.result import (
    PowerInfeasibleSynthesisError,
    TimingInfeasibleError,
)


class TestBasicContracts:
    def test_hal_meets_time_and_power(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        result.verify()
        assert result.latency <= 17
        assert result.peak_power <= 12.0 + 1e-9

    def test_every_operation_bound_exactly_once(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        bound = sorted(result.datapath.binding)
        assert bound == sorted(hal.schedulable_operations())
        per_instance = [
            op
            for instance in result.datapath.instances.values()
            for op in instance.bound_ops
        ]
        assert sorted(per_instance) == bound

    def test_bindings_are_type_correct(self, cosine, library):
        result = synthesize(cosine, library, latency=15, max_power=30.0)
        for op_name, instance_name in result.datapath.binding.items():
            module = result.datapath.instances[instance_name].module
            assert module.supports(cosine.operation(op_name).optype)

    def test_no_sharing_conflicts(self, elliptic, library):
        result = synthesize(elliptic, library, latency=22, max_power=25.0)
        assert result.datapath.check_no_conflicts() == []

    def test_area_breakdown_positive(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        assert result.area.functional_units > 0
        assert result.area.registers > 0
        assert result.total_area == pytest.approx(result.area.total)

    def test_unbounded_power_still_legal(self, cosine, library):
        result = synthesize(cosine, library, latency=12)
        result.verify()

    def test_trace_records_every_binding(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        # one trace line per bound operation plus possible backtrack notes
        assert len(result.trace) >= len(hal.schedulable_operations())

    def test_trace_can_be_disabled(self, hal, library):
        options = EngineOptions(trace=False)
        constraints = SynthesisConstraints.of(17, 12.0)
        result = PowerConstrainedSynthesizer(library, constraints, options).synthesize(hal)
        assert result.trace == []

    def test_deterministic(self, hal, library):
        first = synthesize(hal, library, latency=17, max_power=12.0)
        second = synthesize(hal, library, latency=17, max_power=12.0)
        assert first.total_area == second.total_area
        assert first.schedule.start_times == second.schedule.start_times


class TestModuleSelection:
    def test_tight_latency_uses_parallel_multiplier(self, hal, library):
        """hal at T=10 is below the serial-multiplier critical path (16)."""
        result = synthesize(hal, library, latency=10)
        assert result.allocation_summary().get("Mult (par.)", 0) >= 1

    def test_loose_latency_prefers_serial_multiplier(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        allocation = result.allocation_summary()
        assert allocation.get("Mult (par.)", 0) == 0
        assert allocation.get("Mult (ser.)", 0) >= 1

    def test_sharing_reduces_multiplier_count(self, hal, library):
        """Six multiplications must not need six multipliers at T=17."""
        result = synthesize(hal, library, latency=17, max_power=12.0)
        mults = result.allocation_summary().get("Mult (ser.)", 0)
        assert mults < len(hal.operations_of_type(OpType.MUL))


class TestInfeasibility:
    def test_latency_below_best_critical_path(self, hal, library):
        with pytest.raises(TimingInfeasibleError):
            synthesize(hal, library, latency=6, max_power=50.0)

    def test_power_below_single_operation(self, hal, library):
        with pytest.raises(PowerInfeasibleSynthesisError):
            synthesize(hal, library, latency=17, max_power=2.0)

    def test_power_energy_bound(self, cosine, library):
        """The total energy over T cycles forces a minimum budget."""
        with pytest.raises(PowerInfeasibleSynthesisError):
            synthesize(cosine, library, latency=12, max_power=9.0)


class TestConstraintTradeoffs:
    def test_tighter_latency_costs_area(self, hal, library):
        tight = synthesize(hal, library, latency=10)
        loose = synthesize(hal, library, latency=17)
        assert tight.total_area > loose.total_area

    def test_loose_power_matches_unconstrained(self, hal, library):
        unconstrained = synthesize(hal, library, latency=17)
        very_loose = synthesize(hal, library, latency=17, max_power=1000.0)
        assert very_loose.total_area == pytest.approx(unconstrained.total_area)

    def test_peak_power_tracks_budget(self, cosine, library):
        for budget in (28.0, 40.0, 60.0):
            result = synthesize(cosine, library, latency=12, max_power=budget)
            assert result.peak_power <= budget + 1e-9

    def test_result_describe(self, hal, library):
        result = synthesize(hal, library, latency=17, max_power=12.0)
        text = result.describe()
        assert "T<=17" in text
        assert "area" in text


class TestBacktracking:
    def test_backtrack_count_is_reported_and_result_legal(self, hal, library):
        """Tight (T, P) corners exercise the backtrack-and-lock rule; whatever
        path the engine takes, the outcome must stay legal."""
        for budget in (8.5, 9.0, 10.0, 16.5):
            try:
                result = synthesize(hal, library, latency=17, max_power=budget)
            except PowerInfeasibleSynthesisError:
                continue
            result.verify()
            assert result.backtracks >= 0
